package burgers

import (
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/taskgraph"
)

// Counted stencil operations per cell, excluding the phi evaluations:
// three backward-difference advection terms (3 ops each), three central
// second differences (4 ops each), the right-hand-side combination (6) and
// the forward-Euler update (2).
const stencilFlops = 3*3 + 3*4 + 6 + 2 // = 29

// KernelFlopsPerCell returns the counted floating-point work of one cell
// update: the stencil plus three phi evaluations of two exponentials each
// ("The Burgers kernel requires 6 exponentials for each cell").
func KernelFlopsPerCell(e Exp) float64 {
	return stencilFlops + 3*(PhiNonExpFlops+PhiExpCount*e.Flops())
}

// ExpFlopsPerCell returns the exponential share of KernelFlopsPerCell.
func ExpFlopsPerCell(e Exp) float64 { return 3 * PhiExpCount * e.Flops() }

// KernelWeight returns the compute-time scale of the kernel relative to
// the calibrated fast-exp kernel: the IEEE-conforming library slows the
// exponential share down by IEEEExpWeight.
func KernelWeight(e Exp) float64 {
	if e != IEEEExpLib {
		return 1
	}
	expShare := ExpFlopsPerCell(FastExpLib) / KernelFlopsPerCell(FastExpLib)
	return (1 - expShare) + expShare*IEEEExpWeight
}

// advance computes the Burgers update over region, reading uOld (which
// must cover region grown by one cell) and writing uNew.
//
// Note on signs: Algorithm 1 in the paper carries a spurious leading minus
// on line 8 (du would flip the sign of every term, including diffusion,
// and the scheme would diverge); the right-hand side implemented here is
// du = (u_dudx + u_dudy + u_dudz) + nu*(d2udx2 + d2udy2 + d2udz2) with
// u_dudx = phi*(u[i-1]-u[i])/dx, which matches Equation 1.
func advance(uOld, uNew *field.Cell, region grid.Box, lv *grid.Level, t, dt float64, exp func(float64) float64) {
	dx, dy, dz := lv.Spacing[0], lv.Spacing[1], lv.Spacing[2]
	rdx, rdy, rdz := 1/dx, 1/dy, 1/dz
	rdx2, rdy2, rdz2 := rdx*rdx, rdy*rdy, rdz*rdz
	ys, zs := uOld.Strides()
	data := uOld.Data()
	for k := region.Lo.Z; k < region.Hi.Z; k++ {
		z := lv.Origin[2] + (float64(k)+0.5)*dz
		phiz := Phi(z, t, exp)
		for j := region.Lo.Y; j < region.Hi.Y; j++ {
			y := lv.Origin[1] + (float64(j)+0.5)*dy
			phiy := Phi(y, t, exp)
			base := uOld.Index(grid.IV(region.Lo.X, j, k))
			for i := region.Lo.X; i < region.Hi.X; i++ {
				idx := base + (i - region.Lo.X)
				x := lv.Origin[0] + (float64(i)+0.5)*dx
				// The paper evaluates all three phi coefficients per cell
				// (six exponentials each); phiy and phiz are loop
				// invariants the Sunway port did not hoist either, but
				// hoisting does not change the values, only our simulated
				// flop counters, which charge per cell regardless.
				phix := Phi(x, t, exp)
				u := data[idx]
				uDudx := phix * (data[idx-1] - u) * rdx
				uDudy := phiy * (data[idx-ys] - u) * rdy
				uDudz := phiz * (data[idx-zs] - u) * rdz
				d2udx2 := (-2*u + data[idx-1] + data[idx+1]) * rdx2
				d2udy2 := (-2*u + data[idx-ys] + data[idx+ys]) * rdy2
				d2udz2 := (-2*u + data[idx-zs] + data[idx+zs]) * rdz2
				du := (uDudx + uDudy + uDudz) + Nu*(d2udx2+d2udy2+d2udz2)
				uNew.Set(grid.IV(i, j, k), u+dt*du)
			}
		}
	}
}

// advanceSIMD is the vectorised kernel of Section VI-B: the i loop is
// unrolled by the SIMD width of 4, mirroring the structure of the manual
// intrinsics port (Algorithm 2). Lane arithmetic is element-wise and
// bit-identical to the scalar kernel; the remainder loop handles tile
// widths that are not multiples of four.
func advanceSIMD(uOld, uNew *field.Cell, region grid.Box, lv *grid.Level, t, dt float64, exp func(float64) float64) {
	const width = 4
	dx, dy, dz := lv.Spacing[0], lv.Spacing[1], lv.Spacing[2]
	rdx, rdy, rdz := 1/dx, 1/dy, 1/dz
	rdx2, rdy2, rdz2 := rdx*rdx, rdy*rdy, rdz*rdz
	ys, zs := uOld.Strides()
	data := uOld.Data()
	var u, um, up, vy0, vy1, vz0, vz1, phix, du [width]float64
	for k := region.Lo.Z; k < region.Hi.Z; k++ {
		z := lv.Origin[2] + (float64(k)+0.5)*dz
		phiz := Phi(z, t, exp)
		for j := region.Lo.Y; j < region.Hi.Y; j++ {
			y := lv.Origin[1] + (float64(j)+0.5)*dy
			phiy := Phi(y, t, exp)
			base := uOld.Index(grid.IV(region.Lo.X, j, k))
			i := region.Lo.X
			for ; i+width <= region.Hi.X; i += width {
				idx := base + (i - region.Lo.X)
				// SIMD_LOADU-style vector loads.
				for l := 0; l < width; l++ {
					u[l] = data[idx+l]
					um[l] = data[idx+l-1]
					up[l] = data[idx+l+1]
					vy0[l] = data[idx+l-ys]
					vy1[l] = data[idx+l+ys]
					vz0[l] = data[idx+l-zs]
					vz1[l] = data[idx+l+zs]
					x := lv.Origin[0] + (float64(i+l)+0.5)*dx
					phix[l] = Phi(x, t, exp)
				}
				for l := 0; l < width; l++ {
					uDudx := phix[l] * (um[l] - u[l]) * rdx
					uDudy := phiy * (vy0[l] - u[l]) * rdy
					uDudz := phiz * (vz0[l] - u[l]) * rdz
					d2udx2 := (-2*u[l] + um[l] + up[l]) * rdx2
					d2udy2 := (-2*u[l] + vy0[l] + vy1[l]) * rdy2
					d2udz2 := (-2*u[l] + vz0[l] + vz1[l]) * rdz2
					du[l] = (uDudx + uDudy + uDudz) + Nu*(d2udx2+d2udy2+d2udz2)
				}
				for l := 0; l < width; l++ {
					uNew.Set(grid.IV(i+l, j, k), u[l]+dt*du[l])
				}
			}
			if i < region.Hi.X {
				tail := grid.NewBox(grid.IV(i, j, k), grid.IV(region.Hi.X, j+1, k+1))
				advance(uOld, uNew, tail, lv, t, dt, exp)
			}
		}
	}
}

// NewAdvanceTask builds the Burgers timestep task: it requires u from the
// old warehouse with one ghost layer and computes u into the new
// warehouse on the CPE cluster. The functional body is always the
// monomorphic fused kernel (advanceOpt), which is bit-identical to both
// the scalar and 4-wide reference kernels; simd selects only the
// vectorised *cost model* (chosen by the scheduler configuration), since
// the numerics cannot differ.
func NewAdvanceTask(u *taskgraph.Label, e Exp, simd bool) *taskgraph.Task {
	_ = simd
	return &taskgraph.Task{
		Name: "burgers.advance",
		Kind: taskgraph.KindOffload,
		Requires: []taskgraph.Dep{
			{Label: u, DW: taskgraph.OldDW, Ghost: 1},
		},
		Computes: []taskgraph.Dep{
			{Label: u, DW: taskgraph.NewDW},
		},
		Kernel: &taskgraph.Kernel{
			FlopsPerCell:    KernelFlopsPerCell(e),
			ExpFlopsPerCell: ExpFlopsPerCell(e),
			Weight:          KernelWeight(e),
			Compute: func(tc *taskgraph.TileContext) {
				in := tc.In[u]
				out := tc.Out[u]
				advanceOpt(in.Data, out.Data, tc.Tile.Box, tc.Level, tc.Time, tc.Dt, e)
			},
		},
	}
}

// NewULabel creates the solution variable with its exact-solution
// Dirichlet boundary condition.
func NewULabel() *taskgraph.Label {
	return taskgraph.NewLabel("u", BoundaryCondition)
}

// SerialSolve advances the whole level's grid nSteps with the fused
// kernel on a single ghosted field, refreshing physical-boundary ghosts
// from the exact solution each step. It is the runtime-free reference
// implementation used to validate the scheduled, distributed execution.
func SerialSolve(lv *grid.Level, nSteps int, dt float64, e Exp) *field.Cell {
	dom := lv.Layout.Domain
	old := field.NewCellWithGhost(dom, 1)
	fresh := field.NewCellWithGhost(dom, 1)
	old.FillFunc(dom, func(c grid.IVec) float64 {
		x, y, z := lv.CellCenter(c)
		return Initial(x, y, z)
	})
	t := 0.0
	for s := 0; s < nSteps; s++ {
		for _, shell := range subtractShell(dom) {
			old.FillFunc(shell, func(c grid.IVec) float64 {
				x, y, z := lv.CellCenter(c)
				return Exact(x, y, z, t)
			})
		}
		advanceOpt(old, fresh, dom, lv, t, dt, e)
		old, fresh = fresh, old
		t += dt
	}
	return old
}

// subtractShell returns the one-cell shell around dom.
func subtractShell(dom grid.Box) []grid.Box {
	var out []grid.Box
	grown := dom.Grow(1)
	for dzi := -1; dzi <= 1; dzi++ {
		for dyi := -1; dyi <= 1; dyi++ {
			for dxi := -1; dxi <= 1; dxi++ {
				if dxi == 0 && dyi == 0 && dzi == 0 {
					continue
				}
				r := shellSide(dom, grown, grid.IV(dxi, dyi, dzi))
				if !r.Empty() {
					out = append(out, r)
				}
			}
		}
	}
	return out
}

func shellSide(box, grown grid.Box, dir grid.IVec) grid.Box {
	r := grown
	for axis := 0; axis < 3; axis++ {
		switch dir.Comp(axis) {
		case -1:
			r.Lo = r.Lo.WithComp(axis, grown.Lo.Comp(axis))
			r.Hi = r.Hi.WithComp(axis, box.Lo.Comp(axis))
		case 0:
			r.Lo = r.Lo.WithComp(axis, box.Lo.Comp(axis))
			r.Hi = r.Hi.WithComp(axis, box.Hi.Comp(axis))
		case 1:
			r.Lo = r.Lo.WithComp(axis, box.Hi.Comp(axis))
			r.Hi = r.Hi.WithComp(axis, grown.Hi.Comp(axis))
		}
	}
	return r
}
