package burgers

import "math"

// Nu is the viscosity of the medium used throughout the paper.
const Nu = 0.01

// Phi coefficient structure, from Section III:
//
//	phi(x,t) = (0.1 e^a + 0.5 e^b + e^c) / (e^a + e^b + e^c)
//	a = -0.05 (x - 0.5 + 4.95 t)/nu
//	b = -0.25 (x - 0.5 + 0.75 t)/nu
//	c = -0.5  (x - 0.375)/nu
//
// Dividing numerator and denominator by the largest of e^a, e^b, e^c
// reduces the number of exponentials from three to two (the paper's
// optimisation), which also prevents overflow for arguments far from the
// wave fronts.

// Counted floating-point operations of one phi evaluation, excluding the
// exponentials: the three exponent arguments (3 ops each: add, mul, mul by
// 1/nu), two max-subtractions for normalisation (2 — only the two non-max
// exponents are shifted), the weighted numerator (4: two mul, two add), the
// denominator (2 adds) and the final divide (1).
const PhiNonExpFlops = 3*3 + 2 + 4 + 2 + 1 // = 18

// PhiExpCount is the number of exponentials per phi evaluation after
// normalisation.
const PhiExpCount = 2

// Phi evaluates phi(x,t) using the given exponential function.
func Phi(x, t float64, exp func(float64) float64) float64 {
	a := -0.05 * (x - 0.5 + 4.95*t) / Nu
	b := -0.25 * (x - 0.5 + 0.75*t) / Nu
	c := -0.5 * (x - 0.375) / Nu
	// Normalise by the largest exponent so one exponential becomes e^0=1.
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	ea := exp(a - m)
	eb := exp(b - m)
	ec := exp(c - m)
	return (0.1*ea + 0.5*eb + ec) / (ea + eb + ec)
}

// phiRef is the straightforward three-exponential evaluation, used in
// tests as the reference for the normalised form.
func phiRef(x, t float64) float64 {
	a := -0.05 * (x - 0.5 + 4.95*t) / Nu
	b := -0.25 * (x - 0.5 + 0.75*t) / Nu
	c := -0.5 * (x - 0.375) / Nu
	// Guard overflow by the same normalisation, with math.Exp.
	m := math.Max(a, math.Max(b, c))
	ea, eb, ec := math.Exp(a-m), math.Exp(b-m), math.Exp(c-m)
	return (0.1*ea + 0.5*eb + ec) / (ea + eb + ec)
}

// Exact returns the manufactured solution u(x,y,z,t) =
// phi(x,t) phi(y,t) phi(z,t), used for the initial condition (t=0), the
// physical boundary conditions, and correctness checks.
func Exact(x, y, z, t float64) float64 {
	return phiRef(x, t) * phiRef(y, t) * phiRef(z, t)
}

// Initial returns the initial condition u(x,y,z,0).
func Initial(x, y, z float64) float64 { return Exact(x, y, z, 0) }

// BoundaryCondition is the time-dependent Dirichlet condition derived from
// the exact solution, in the signature the task graph's labels expect.
func BoundaryCondition(x, y, z, t float64) float64 { return Exact(x, y, z, t) }

// StableDt returns a forward-Euler-stable timestep for the given cell
// spacings: the diffusive limit dx^2/(2 nu) per direction combined with
// the advective limit dx/|phi|max (|phi| <= 1), with a safety factor.
func StableDt(dx, dy, dz float64) float64 {
	diff := 0.0
	diff += 2 * Nu / (dx * dx)
	diff += 2 * Nu / (dy * dy)
	diff += 2 * Nu / (dz * dz)
	adv := 1/dx + 1/dy + 1/dz // |phi| <= 1
	limit := 1.0 / (diff + adv)
	return 0.9 * limit
}
