package burgers

import (
	"math"
	"testing"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
)

func kernelFixture(t testing.TB, cells grid.IVec) (*grid.Level, *field.Cell, float64) {
	t.Helper()
	lv, err := grid.NewUnitCubeLevel(cells, grid.IV(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	in := field.NewCellWithGhost(lv.Layout.Domain, 1)
	in.FillFunc(in.Alloc(), func(c grid.IVec) float64 {
		x, y, z := lv.CellCenter(c)
		return Initial(x, y, z)
	})
	return lv, in, StableDt(lv.Spacing[0], lv.Spacing[1], lv.Spacing[2])
}

// TestAdvanceOptBitIdentical proves the monomorphic fused kernel produces
// exactly the reference scalar kernel's bits for both exponential
// libraries, on a grid whose x extent is not a multiple of the SIMD
// width.
func TestAdvanceOptBitIdentical(t *testing.T) {
	for _, e := range []Exp{FastExpLib, IEEEExpLib} {
		lv, in, dt := kernelFixture(t, grid.IV(13, 9, 7))
		dom := lv.Layout.Domain
		ref := field.NewCell(dom)
		opt := field.NewCell(dom)
		tLevel := 0.37 * dt
		advance(in, ref, dom, lv, tLevel, dt, e.ExpFunc())
		advanceOpt(in, opt, dom, lv, tLevel, dt, e)
		if d := field.MaxAbsDiff(ref, opt, dom); d != 0 {
			t.Errorf("%v: advanceOpt differs from advance by %g (must be bit-identical)", e, d)
		}
	}
}

// TestAdvanceOptSubRegion exercises the tile-shaped case the CPE path
// uses: the input allocated over a grown region, the output over the bare
// tile, computing an interior sub-box.
func TestAdvanceOptSubRegion(t *testing.T) {
	lv, in, dt := kernelFixture(t, grid.IV(16, 16, 16))
	tile := grid.NewBox(grid.IV(3, 4, 5), grid.IV(11, 9, 13))
	ref := field.NewCell(tile)
	opt := field.NewCell(tile)
	advance(in, ref, tile, lv, 0, dt, FastExp)
	advanceOpt(in, opt, tile, lv, 0, dt, FastExpLib)
	if d := field.MaxAbsDiff(ref, opt, tile); d != 0 {
		t.Errorf("sub-region advanceOpt differs from advance by %g", d)
	}
}

// TestAdvanceOptZeroAlloc verifies the kernel path is allocation-free in
// steady state: all scratch comes from the field pool.
func TestAdvanceOptZeroAlloc(t *testing.T) {
	lv, in, dt := kernelFixture(t, grid.IV(16, 16, 8))
	dom := lv.Layout.Domain
	out := field.NewCell(dom)
	advanceOpt(in, out, dom, lv, 0, dt, FastExpLib) // warm the pool
	if n := testing.AllocsPerRun(20, func() {
		advanceOpt(in, out, dom, lv, 0, dt, FastExpLib)
	}); n != 0 {
		t.Errorf("advanceOpt allocates %v times per run, want 0", n)
	}
}

// TestFastExpSliceMatches checks the batched evaluation lane-for-lane
// against FastExp, including the remainder loop and the saturation and
// NaN special cases.
func TestFastExpSliceMatches(t *testing.T) {
	src := []float64{-3.7, 0, 1, 700, 710, -744, -746, math.NaN(), 0.5, -0.25, 88}
	for n := 0; n <= len(src); n++ {
		dst := make([]float64, n)
		FastExpSlice(dst, src[:n])
		for i := 0; i < n; i++ {
			want := FastExp(src[i])
			got := dst[i]
			if math.IsNaN(want) != math.IsNaN(got) ||
				(!math.IsNaN(want) && math.Float64bits(got) != math.Float64bits(want)) {
				t.Errorf("FastExpSlice(%g)[len %d] = %g, want %g", src[i], n, got, want)
			}
		}
	}
}
