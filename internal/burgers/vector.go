package burgers

import (
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/taskgraph"
)

// VectorSystem is the full (self-advecting) vector Burgers system
//
//	du/dt = -(u,v,w) . grad(u) + nu Lap(u)
//	dv/dt = -(u,v,w) . grad(v) + nu Lap(v)
//	dw/dt = -(u,v,w) . grad(w) + nu Lap(w)
//
// — the "full Uintah application" direction the paper's conclusion points
// to. One task computes all three components from all three inputs, so
// each LDM tile must stage six fields (three ghosted inputs, three
// outputs): with the paper's 16x16x8 tile that is 77.8 KB and the LDM
// feasibility check rejects it; an 8x8x8 tile (36.2 KB) fits. The system
// therefore exercises the multi-variable working-set machinery that the
// scalar model problem cannot.
type VectorSystem struct {
	U, V, W *taskgraph.Label
}

// NewVectorSystem creates the three velocity components with scaled
// exact-scalar boundary conditions (each component uses the scalar
// manufactured solution, scaled like its initial data, as Dirichlet data;
// the discrete interior evolves under the full nonlinear coupling).
func NewVectorSystem() *VectorSystem {
	scaled := func(f float64) func(x, y, z, t float64) float64 {
		return func(x, y, z, t float64) float64 { return f * Exact(x, y, z, t) }
	}
	return &VectorSystem{
		U: taskgraph.NewLabel("velU", scaled(1)),
		V: taskgraph.NewLabel("velV", scaled(0.5)),
		W: taskgraph.NewLabel("velW", scaled(0.25)),
	}
}

// Labels returns the three components in order.
func (vs *VectorSystem) Labels() []*taskgraph.Label {
	return []*taskgraph.Label{vs.U, vs.V, vs.W}
}

// Initial returns per-component initial conditions: the scalar solution
// scaled differently per component so the coupling is non-trivial.
func (vs *VectorSystem) Initial() map[*taskgraph.Label]func(x, y, z float64) float64 {
	return map[*taskgraph.Label]func(x, y, z float64) float64{
		vs.U: func(x, y, z float64) float64 { return Initial(x, y, z) },
		vs.V: func(x, y, z float64) float64 { return 0.5 * Initial(x, y, z) },
		vs.W: func(x, y, z float64) float64 { return 0.25 * Initial(x, y, z) },
	}
}

// VectorTileSize is the largest power-of-two-ish tile whose six-field
// working set fits the 64 KB LDM.
var VectorTileSize = grid.IV(8, 8, 8)

// Per-cell counted work: for each of three components, three upwind terms
// (4 ops each: diff, two muls — velocity times difference times 1/dx),
// three second differences (4 ops), combination (6) and update (2).
const vectorFlopsPerCell = 3 * (3*4 + 3*4 + 6 + 2)

// vectorAdvance applies one step of the coupled system on region.
func vectorAdvance(in [3]*field.Cell, out [3]*field.Cell, region grid.Box, lv *grid.Level, dt float64) {
	rdx := 1 / lv.Spacing[0]
	rdy := 1 / lv.Spacing[1]
	rdz := 1 / lv.Spacing[2]
	rdx2, rdy2, rdz2 := rdx*rdx, rdy*rdy, rdz*rdz
	region.ForEach(func(c grid.IVec) {
		xm, xp := c.Sub(grid.IV(1, 0, 0)), c.Add(grid.IV(1, 0, 0))
		ym, yp := c.Sub(grid.IV(0, 1, 0)), c.Add(grid.IV(0, 1, 0))
		zm, zp := c.Sub(grid.IV(0, 0, 1)), c.Add(grid.IV(0, 0, 1))
		au := in[0].At(c)
		av := in[1].At(c)
		aw := in[2].At(c)
		for comp := 0; comp < 3; comp++ {
			q := in[comp].At(c)
			adv := au*(q-in[comp].At(xm))*rdx +
				av*(q-in[comp].At(ym))*rdy +
				aw*(q-in[comp].At(zm))*rdz
			lap := (in[comp].At(xm)+in[comp].At(xp)-2*q)*rdx2 +
				(in[comp].At(ym)+in[comp].At(yp)-2*q)*rdy2 +
				(in[comp].At(zm)+in[comp].At(zp)-2*q)*rdz2
			out[comp].Set(c, q+dt*(-adv+Nu*lap))
		}
	})
}

// NewVectorAdvanceTask builds the coupled timestep task: requires all
// three components from the old warehouse with one ghost layer, computes
// all three into the new warehouse.
func (vs *VectorSystem) NewVectorAdvanceTask() *taskgraph.Task {
	labels := vs.Labels()
	reqs := make([]taskgraph.Dep, 3)
	comps := make([]taskgraph.Dep, 3)
	for i, l := range labels {
		reqs[i] = taskgraph.Dep{Label: l, DW: taskgraph.OldDW, Ghost: 1}
		comps[i] = taskgraph.Dep{Label: l, DW: taskgraph.NewDW}
	}
	return &taskgraph.Task{
		Name:     "burgers.vectorAdvance",
		Kind:     taskgraph.KindOffload,
		Requires: reqs,
		Computes: comps,
		Kernel: &taskgraph.Kernel{
			FlopsPerCell: vectorFlopsPerCell,
			Weight:       0.4, // no exponentials, but 3x the stencil work
			Compute: func(tc *taskgraph.TileContext) {
				var in, out [3]*field.Cell
				for i, l := range labels {
					in[i] = tc.In[l].Data
					out[i] = tc.Out[l].Data
				}
				vectorAdvance(in, out, tc.Tile.Box, tc.Level, tc.Dt)
			},
		},
	}
}

// VectorSerialSolve is the runtime-free reference for the coupled system.
func (vs *VectorSystem) VectorSerialSolve(lv *grid.Level, nSteps int, dt float64) [3]*field.Cell {
	dom := lv.Layout.Domain
	var old, fresh [3]*field.Cell
	inits := vs.Initial()
	for i, l := range vs.Labels() {
		old[i] = field.NewCellWithGhost(dom, 1)
		fresh[i] = field.NewCellWithGhost(dom, 1)
		init := inits[l]
		old[i].FillFunc(dom, func(c grid.IVec) float64 {
			x, y, z := lv.CellCenter(c)
			return init(x, y, z)
		})
	}
	t := 0.0
	for s := 0; s < nSteps; s++ {
		shell := dom.Grow(1)
		shell.ForEach(func(c grid.IVec) {
			if dom.Contains(c) {
				return
			}
			x, y, z := lv.CellCenter(c)
			bc := Exact(x, y, z, t)
			old[0].Set(c, bc)
			old[1].Set(c, 0.5*bc)
			old[2].Set(c, 0.25*bc)
		})
		vectorAdvance(old, fresh, dom, lv, dt)
		old, fresh = fresh, old
		t += dt
	}
	return old
}
