package burgers

import (
	"math"
	"testing"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
)

// Ablation A3: the fast non-IEEE exponential versus the conforming library
// (Section VI-C).

var sinkF float64

func BenchmarkFastExp(b *testing.B) {
	x := -3.7
	for i := 0; i < b.N; i++ {
		sinkF = FastExp(x)
		x += 1e-9
	}
}

func BenchmarkIEEEExp(b *testing.B) {
	x := -3.7
	for i := 0; i < b.N; i++ {
		sinkF = math.Exp(x)
		x += 1e-9
	}
}

func BenchmarkPhi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF = Phi(0.4, 0.01, FastExp)
	}
}

func benchKernel(b *testing.B, simd bool) {
	lv, err := grid.NewUnitCubeLevel(grid.IV(32, 32, 32), grid.IV(1, 1, 1))
	if err != nil {
		b.Fatal(err)
	}
	dom := lv.Layout.Domain
	in := field.NewCellWithGhost(dom, 1)
	in.FillFunc(in.Alloc(), func(c grid.IVec) float64 {
		x, y, z := lv.CellCenter(c)
		return Initial(x, y, z)
	})
	out := field.NewCell(dom)
	dt := StableDt(lv.Spacing[0], lv.Spacing[1], lv.Spacing[2])
	b.SetBytes(dom.NumCells() * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if simd {
			advanceSIMD(in, out, dom, lv, 0, dt, FastExp)
		} else {
			advance(in, out, dom, lv, 0, dt, FastExp)
		}
	}
}

func BenchmarkKernelScalar(b *testing.B) { benchKernel(b, false) }
func BenchmarkKernelSIMD(b *testing.B)   { benchKernel(b, true) }

// benchKernelOpt measures the monomorphic fused kernel per exponential
// library, reporting cells/s (the paper's kernel throughput unit) and
// allocs/op (zero in steady state, by the pool design).
func benchKernelOpt(b *testing.B, e Exp) {
	lv, err := grid.NewUnitCubeLevel(grid.IV(32, 32, 32), grid.IV(1, 1, 1))
	if err != nil {
		b.Fatal(err)
	}
	dom := lv.Layout.Domain
	in := field.NewCellWithGhost(dom, 1)
	in.FillFunc(in.Alloc(), func(c grid.IVec) float64 {
		x, y, z := lv.CellCenter(c)
		return Initial(x, y, z)
	})
	out := field.NewCell(dom)
	dt := StableDt(lv.Spacing[0], lv.Spacing[1], lv.Spacing[2])
	advanceOpt(in, out, dom, lv, 0, dt, e) // warm the pool
	cells := dom.NumCells()
	b.SetBytes(cells * 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		advanceOpt(in, out, dom, lv, 0, dt, e)
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

func BenchmarkKernelMonoFast(b *testing.B) { benchKernelOpt(b, FastExpLib) }
func BenchmarkKernelMonoIEEE(b *testing.B) { benchKernelOpt(b, IEEEExpLib) }
