package burgers

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
)

func TestFastExpAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	maxRel := 0.0
	for i := 0; i < 100000; i++ {
		x := rng.Float64()*1400 - 700
		got := FastExp(x)
		want := math.Exp(x)
		rel := math.Abs(got-want) / want
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 3e-13 {
		t.Fatalf("max relative error = %g, want <= 3e-13", maxRel)
	}
}

func TestFastExpSpecialCases(t *testing.T) {
	if FastExp(0) != 1 {
		t.Errorf("FastExp(0) = %v", FastExp(0))
	}
	if !math.IsInf(FastExp(800), 1) {
		t.Error("overflow should saturate to +Inf")
	}
	if FastExp(-800) != 0 {
		t.Error("underflow should saturate to 0")
	}
	if !math.IsNaN(FastExp(math.NaN())) {
		t.Error("NaN should propagate")
	}
	if got := FastExp(1); math.Abs(got-math.E) > 1e-12 {
		t.Errorf("FastExp(1) = %v", got)
	}
}

// Property: FastExp is positive, finite and monotone on the normal range.
func TestPropertyFastExpMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 700)
		b = math.Mod(b, 700)
		if a != a || b != b {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		elo, ehi := FastExp(lo), FastExp(hi)
		return elo > 0 && elo <= ehi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPhiMatchesReference(t *testing.T) {
	for _, x := range []float64{0, 0.1, 0.375, 0.5, 0.9, 1.0} {
		for _, tt := range []float64{0, 0.001, 0.01, 0.1} {
			got := Phi(x, tt, FastExp)
			want := phiRef(x, tt)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("Phi(%v,%v) = %v, want %v", x, tt, got, want)
			}
		}
	}
}

func TestPhiBounded(t *testing.T) {
	// phi is a convex combination of 0.1, 0.5 and 1.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		x := rng.Float64()*2 - 0.5
		tt := rng.Float64() * 0.5
		v := Phi(x, tt, FastExp)
		if v < 0.1-1e-12 || v > 1+1e-12 {
			t.Fatalf("Phi(%v,%v) = %v outside [0.1, 1]", x, tt, v)
		}
	}
}

func TestExactIsProductOfPhis(t *testing.T) {
	x, y, z, tt := 0.3, 0.6, 0.9, 0.02
	want := phiRef(x, tt) * phiRef(y, tt) * phiRef(z, tt)
	if got := Exact(x, y, z, tt); got != want {
		t.Errorf("Exact = %v, want %v", got, want)
	}
	if Initial(x, y, z) != Exact(x, y, z, 0) {
		t.Error("Initial must be Exact at t=0")
	}
	if BoundaryCondition(x, y, z, tt) != Exact(x, y, z, tt) {
		t.Error("BC must equal the exact solution")
	}
}

func TestFlopAccountingStructure(t *testing.T) {
	total := KernelFlopsPerCell(FastExpLib)
	expPart := ExpFlopsPerCell(FastExpLib)
	if expPart >= total {
		t.Fatalf("exp part %v must be below total %v", expPart, total)
	}
	// The paper: ~311 flops/cell, ~215 (69%) from exponentials. Our leaner
	// software exp counts fewer ops, but the structure must match: a
	// couple hundred flops, exponential-dominated.
	if total < 200 || total > 330 {
		t.Errorf("KernelFlopsPerCell = %v, want a few hundred", total)
	}
	share := expPart / total
	if share < 0.55 || share > 0.75 {
		t.Errorf("exp share = %.2f, want ~2/3 (paper: 215/311)", share)
	}
	if ExpFlopsPerCell(FastExpLib) != 6*FastExpFlops {
		t.Error("six exponentials per cell (Section VI-C)")
	}
	if KernelWeight(IEEEExpLib) <= KernelWeight(FastExpLib) {
		t.Error("IEEE exp must cost more than the fast library")
	}
}

func TestStableDtScalesWithResolution(t *testing.T) {
	coarse := StableDt(1.0/32, 1.0/32, 1.0/32)
	fine := StableDt(1.0/64, 1.0/64, 1.0/64)
	if fine >= coarse {
		t.Fatalf("finer grid must need smaller dt: %v vs %v", fine, coarse)
	}
	if coarse <= 0 {
		t.Fatal("dt must be positive")
	}
}

func newLevel(t *testing.T, cells grid.IVec) *grid.Level {
	t.Helper()
	lv, err := grid.NewUnitCubeLevel(cells, grid.IV(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return lv
}

// applyKernel runs one step of the given kernel body over the whole grid
// with exact ghost values.
func applyKernel(lv *grid.Level, simd bool, t0, dt float64) *field.Cell {
	dom := lv.Layout.Domain
	old := field.NewCellWithGhost(dom, 1)
	old.FillFunc(old.Alloc(), func(c grid.IVec) float64 {
		x, y, z := lv.CellCenter(c)
		return Exact(x, y, z, t0)
	})
	out := field.NewCell(dom)
	if simd {
		advanceSIMD(old, out, dom, lv, t0, dt, FastExp)
	} else {
		advance(old, out, dom, lv, t0, dt, FastExp)
	}
	return out
}

func TestSIMDKernelBitIdenticalToScalar(t *testing.T) {
	// Width 10 exercises both the 4-wide body and the remainder loop.
	lv := newLevel(t, grid.IV(10, 6, 6))
	dt := StableDt(lv.Spacing[0], lv.Spacing[1], lv.Spacing[2])
	a := applyKernel(lv, false, 0.003, dt)
	b := applyKernel(lv, true, 0.003, dt)
	if d := field.MaxAbsDiff(a, b, lv.Layout.Domain); d != 0 {
		t.Fatalf("simd kernel differs from scalar by %g", d)
	}
}

func TestOneStepTruncationShrinksWithResolution(t *testing.T) {
	// The solution's wave fronts have width ~nu/0.5 = 0.02, so coarse
	// grids under-resolve them; the one-step error must drop markedly as
	// the grid refines.
	oneStepErr := func(n int) float64 {
		lv := newLevel(t, grid.IV(n, n, n))
		dt := StableDt(lv.Spacing[0], lv.Spacing[1], lv.Spacing[2])
		got := applyKernel(lv, false, 0, dt)
		maxErr := 0.0
		lv.Layout.Domain.ForEach(func(c grid.IVec) {
			x, y, z := lv.CellCenter(c)
			if e := math.Abs(got.At(c) - Exact(x, y, z, dt)); e > maxErr {
				maxErr = e
			}
		})
		return maxErr
	}
	e16, e64 := oneStepErr(16), oneStepErr(64)
	if e64 >= e16/4 {
		t.Fatalf("one-step error did not shrink with resolution: e16=%g e64=%g", e16, e64)
	}
	if e64 > 2e-3 {
		t.Fatalf("one-step error at 64^3 = %g, too large", e64)
	}
}

func TestSerialSolveConvergesFirstOrder(t *testing.T) {
	// Halving dx (and correspondingly dt) should roughly halve the error
	// at a fixed final time: the scheme is first order in space (backward
	// differences) and time.
	if testing.Short() {
		t.Skip("convergence study")
	}
	finalT := 0.02
	errAt := func(n int) float64 {
		lv := newLevel(t, grid.IV(n, n, n))
		dt := StableDt(lv.Spacing[0], lv.Spacing[1], lv.Spacing[2])
		steps := int(math.Ceil(finalT / dt))
		dt = finalT / float64(steps)
		u := SerialSolve(lv, steps, dt, FastExpLib)
		maxErr := 0.0
		lv.Layout.Domain.ForEach(func(c grid.IVec) {
			x, y, z := lv.CellCenter(c)
			if e := math.Abs(u.At(c) - Exact(x, y, z, finalT)); e > maxErr {
				maxErr = e
			}
		})
		return maxErr
	}
	e16 := errAt(16)
	e32 := errAt(32)
	ratio := e16 / e32
	if ratio < 1.5 || ratio > 3.5 {
		t.Fatalf("error ratio 16->32 = %.2f (e16=%g, e32=%g), want ~2 (first order)", ratio, e16, e32)
	}
}

func TestSerialSolveStability(t *testing.T) {
	// The solution stays within the bounds of the convex-combination
	// solution for many steps at the stable dt.
	lv := newLevel(t, grid.IV(12, 12, 12))
	dt := StableDt(lv.Spacing[0], lv.Spacing[1], lv.Spacing[2])
	u := SerialSolve(lv, 50, dt, FastExpLib)
	lv.Layout.Domain.ForEach(func(c grid.IVec) {
		v := u.At(c)
		if v < 0.1*0.1*0.1-1e-6 || v > 1+1e-6 {
			t.Fatalf("cell %v = %v escaped [0.001, 1]", c, v)
		}
	})
}

func TestIEEEAndFastExpAgreeOnSolution(t *testing.T) {
	lv := newLevel(t, grid.IV(8, 8, 8))
	dt := StableDt(lv.Spacing[0], lv.Spacing[1], lv.Spacing[2])
	a := SerialSolve(lv, 5, dt, FastExpLib)
	b := SerialSolve(lv, 5, dt, IEEEExpLib)
	if d := field.MaxAbsDiff(a, b, lv.Layout.Domain); d > 1e-11 {
		t.Fatalf("fast vs IEEE exp solution difference = %g", d)
	}
}
