package core

import (
	"errors"
	"math"
	"testing"

	"sunuintah/internal/burgers"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/loadbalancer"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/sw26010"
	"sunuintah/internal/taskgraph"
)

// burgersProblem builds a functional Burgers setup on an n^3 grid.
func burgersProblem(cells, patches grid.IVec, simd bool) (Problem, *taskgraph.Label) {
	u := burgers.NewULabel()
	dx := 1.0 / float64(cells.X)
	dy := 1.0 / float64(cells.Y)
	dz := 1.0 / float64(cells.Z)
	return Problem{
		Tasks:   []*taskgraph.Task{burgers.NewAdvanceTask(u, burgers.FastExpLib, simd)},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{u: burgers.Initial},
		Dt:      burgers.StableDt(dx, dy, dz),
	}, u
}

func functionalCfg(cells, patches grid.IVec, cgs int, mode scheduler.Mode, simd bool) Config {
	return Config{
		Cells:       cells,
		PatchCounts: patches,
		NumCGs:      cgs,
		Scheduler: scheduler.Config{
			Mode:       mode,
			SIMD:       simd,
			TileSize:   grid.IV(8, 8, 4),
			Functional: true,
		},
	}
}

// runAndGather executes nSteps and returns the final global field.
func runAndGather(t *testing.T, cfg Config, prob Problem, u *taskgraph.Label, nSteps int) (*field.Cell, *Result) {
	t.Helper()
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nSteps)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	return f, res
}

func TestFunctionalMatchesSerialReferenceAllVariants(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	const nSteps = 4
	lv, _ := grid.NewUnitCubeLevel(cells, patches)
	prob, u := burgersProblem(cells, patches, false)
	ref := burgers.SerialSolve(lv, nSteps, prob.Dt, burgers.FastExpLib)

	cases := []struct {
		name string
		mode scheduler.Mode
		simd bool
		cgs  int
	}{
		{"host.sync-1cg", scheduler.ModeMPEOnly, false, 1},
		{"acc.sync-1cg", scheduler.ModeSync, false, 1},
		{"acc.async-1cg", scheduler.ModeAsync, false, 1},
		{"acc.sync-4cg", scheduler.ModeSync, false, 4},
		{"acc.async-4cg", scheduler.ModeAsync, false, 4},
		{"acc_simd.async-8cg", scheduler.ModeAsync, true, 8},
		{"acc.async-2cg", scheduler.ModeAsync, false, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prob, u := burgersProblem(cells, patches, tc.simd)
			cfg := functionalCfg(cells, patches, tc.cgs, tc.mode, tc.simd)
			got, _ := runAndGather(t, cfg, prob, u, nSteps)
			if d := field.MaxAbsDiff(got, ref, lv.Layout.Domain); d > 1e-13 {
				t.Fatalf("distributed result differs from serial reference by %g", d)
			}
			_ = u
		})
	}
	_ = u
}

func TestSolutionApproachesExact(t *testing.T) {
	cells := grid.IV(24, 24, 24)
	patches := grid.IV(2, 2, 2)
	prob, u := burgersProblem(cells, patches, false)
	cfg := functionalCfg(cells, patches, 4, scheduler.ModeAsync, false)
	const nSteps = 6
	got, _ := runAndGather(t, cfg, prob, u, nSteps)
	lv, _ := grid.NewUnitCubeLevel(cells, patches)
	finalT := float64(nSteps) * prob.Dt
	maxErr := 0.0
	lv.Layout.Domain.ForEach(func(c grid.IVec) {
		x, y, z := lv.CellCenter(c)
		if e := math.Abs(got.At(c) - burgers.Exact(x, y, z, finalT)); e > maxErr {
			maxErr = e
		}
	})
	// Coarse grid, sharp fronts: the scheme is stable and tracks the
	// solution to within the resolution-limited truncation error.
	if maxErr > 0.05 {
		t.Fatalf("error vs exact = %g", maxErr)
	}
}

func TestReductionTaskRuns(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	u := burgers.NewULabel()
	var reduced []float64
	red := &taskgraph.Task{
		Name:     "maxU",
		Kind:     taskgraph.KindReduction,
		Requires: []taskgraph.Dep{{Label: u, DW: taskgraph.NewDW}},
		Reduce: &taskgraph.ReduceSpec{
			Op: 1, // OpMax
			Local: func(p *grid.Patch, f *field.Cell) float64 {
				return field.MaxAbs(f, p.Box)
			},
			Result: func(step int, v float64) { reduced = append(reduced, v) },
		},
	}
	dx := 1.0 / 16
	prob := Problem{
		Tasks: []*taskgraph.Task{
			burgers.NewAdvanceTask(u, burgers.FastExpLib, false),
			red,
		},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{u: burgers.Initial},
		Dt:      burgers.StableDt(dx, dx, dx),
	}
	cfg := functionalCfg(cells, patches, 4, scheduler.ModeAsync, false)
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(reduced) != 3*4 { // once per step per rank
		t.Fatalf("reduction ran %d times, want 12", len(reduced))
	}
	for _, v := range reduced {
		// max|u| is within the convex-combination bounds.
		if v < 0.001 || v > 1.0+1e-9 {
			t.Fatalf("reduced max = %v out of range", v)
		}
	}
	// All ranks see the same value each step.
	for step := 0; step < 3; step++ {
		for r := 1; r < 4; r++ {
			if reduced[step*4+r] != reduced[step*4] {
				t.Fatalf("step %d: rank %d reduced %v != %v", step, r, reduced[step*4+r], reduced[step*4])
			}
		}
	}
}

func TestTableIIIOutOfMemoryReproduced(t *testing.T) {
	// 64x64x512 patches on 1 CG (the whole 512x512x1024 grid, 4 GB of
	// fields) must fail with a memory allocation error; 2 CGs must work.
	prob, _ := burgersProblem(grid.IV(512, 512, 1024), grid.IV(8, 8, 2), false)
	cfg := Config{
		Cells:       grid.IV(512, 512, 1024),
		PatchCounts: grid.IV(8, 8, 2),
		NumCGs:      1,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, Functional: false},
	}
	_, err := NewSimulation(cfg, prob)
	var oom *sw26010.ErrOutOfMemory
	if err == nil {
		// Allocation of the second warehouse happens inside the run.
		s, _ := NewSimulation(cfg, prob)
		_, err = s.Run(1)
	}
	if err == nil || !errors.As(err, &oom) {
		t.Fatalf("expected out-of-memory, got %v", err)
	}

	cfg.NumCGs = 2
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1); err != nil {
		t.Fatalf("2 CGs should fit: %v", err)
	}
}

func TestTimingOnlyRunProducesSaneResult(t *testing.T) {
	prob, _ := burgersProblem(grid.IV(128, 128, 1024), grid.IV(8, 8, 2), false)
	cfg := Config{
		Cells:       grid.IV(128, 128, 1024),
		PatchCounts: grid.IV(8, 8, 2),
		NumCGs:      8,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, Functional: false},
	}
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime <= 0 || res.PerStep <= 0 {
		t.Fatalf("wall time = %v", res.WallTime)
	}
	wantCells := int64(128*128*1024) * 3
	if res.Counters.CellsComputed != wantCells {
		t.Fatalf("cells computed = %d, want %d", res.Counters.CellsComputed, wantCells)
	}
	if res.Gflops <= 0 || res.Efficiency <= 0 || res.Efficiency > 0.05 {
		t.Fatalf("gflops = %v efficiency = %v", res.Gflops, res.Efficiency)
	}
	if res.BytesOnWire == 0 {
		t.Fatal("multi-rank run must exchange ghost data")
	}
	// Step ends must be increasing.
	for i := 1; i < len(res.StepEnds); i++ {
		if res.StepEnds[i] <= res.StepEnds[i-1] {
			t.Fatalf("step ends not increasing: %v", res.StepEnds)
		}
	}
}

func TestAsyncNotSlowerThanSyncMidSize(t *testing.T) {
	// The headline claim: asynchronous scheduling beats synchronous on a
	// medium problem at a moderate CG count.
	run := func(mode scheduler.Mode) *Result {
		prob, _ := burgersProblem(grid.IV(256, 512, 1024), grid.IV(8, 8, 2), false)
		cfg := Config{
			Cells:       grid.IV(256, 512, 1024),
			PatchCounts: grid.IV(8, 8, 2),
			NumCGs:      16,
			Scheduler:   scheduler.Config{Mode: mode, Functional: false},
		}
		s, err := NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	syncRes := run(scheduler.ModeSync)
	asyncRes := run(scheduler.ModeAsync)
	if asyncRes.PerStep >= syncRes.PerStep {
		t.Fatalf("async (%v) not faster than sync (%v)", asyncRes.PerStep, syncRes.PerStep)
	}
}

func TestHostModeSlowerThanOffload(t *testing.T) {
	run := func(mode scheduler.Mode) *Result {
		prob, _ := burgersProblem(grid.IV(128, 128, 1024), grid.IV(8, 8, 2), false)
		cfg := Config{
			Cells:       grid.IV(128, 128, 1024),
			PatchCounts: grid.IV(8, 8, 2),
			NumCGs:      8,
			Scheduler:   scheduler.Config{Mode: mode, Functional: false},
		}
		s, err := NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	host := run(scheduler.ModeMPEOnly)
	acc := run(scheduler.ModeAsync)
	boost := float64(host.PerStep / acc.PerStep)
	if boost < 2.0 {
		t.Fatalf("offload boost = %.2f, want > 2 (paper: 2.7-6.0)", boost)
	}
}

func TestConfigValidation(t *testing.T) {
	prob, _ := burgersProblem(grid.IV(8, 8, 8), grid.IV(1, 1, 1), false)
	if _, err := NewSimulation(Config{Cells: grid.IV(8, 8, 8), PatchCounts: grid.IV(1, 1, 1)}, prob); err == nil {
		t.Error("zero CGs should fail")
	}
	bad := prob
	bad.Dt = 0
	if _, err := NewSimulation(Config{Cells: grid.IV(8, 8, 8), PatchCounts: grid.IV(1, 1, 1), NumCGs: 1}, bad); err == nil {
		t.Error("zero dt should fail")
	}
	empty := Problem{Dt: 1}
	if _, err := NewSimulation(Config{Cells: grid.IV(8, 8, 8), PatchCounts: grid.IV(1, 1, 1), NumCGs: 1}, empty); err == nil {
		t.Error("no tasks should fail")
	}
}

func TestCarryForwardValidation(t *testing.T) {
	u := taskgraph.NewLabel("u", nil)
	v := taskgraph.NewLabel("v", nil)
	task := &taskgraph.Task{
		Name: "bad", Kind: taskgraph.KindOffload,
		Requires: []taskgraph.Dep{{Label: u, DW: taskgraph.OldDW, Ghost: 1}},
		Computes: []taskgraph.Dep{{Label: v, DW: taskgraph.NewDW}},
		Kernel:   &taskgraph.Kernel{Weight: 1},
	}
	prob := Problem{Tasks: []*taskgraph.Task{task}, Dt: 0.1}
	cfg := Config{Cells: grid.IV(8, 8, 8), PatchCounts: grid.IV(1, 1, 1), NumCGs: 1,
		Scheduler: scheduler.Config{Mode: scheduler.ModeAsync}}
	if _, err := NewSimulation(cfg, prob); err == nil {
		t.Fatal("requiring u from old DW without recomputing it should fail")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() *Result {
		prob, _ := burgersProblem(grid.IV(64, 64, 128), grid.IV(4, 4, 2), false)
		cfg := Config{
			Cells:       grid.IV(64, 64, 128),
			PatchCounts: grid.IV(4, 4, 2),
			NumCGs:      8,
			Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, Functional: false},
		}
		s, err := NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.WallTime != b.WallTime || a.Counters != b.Counters {
		t.Fatalf("runs diverged: %v vs %v", a.WallTime, b.WallTime)
	}
}

func TestBalancerStrategiesGiveIdenticalSolutions(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	lv, _ := grid.NewUnitCubeLevel(cells, patches)
	prob, u := burgersProblem(cells, patches, false)
	ref := burgers.SerialSolve(lv, 3, prob.Dt, burgers.FastExpLib)
	for _, strat := range []loadbalancer.Strategy{loadbalancer.Block, loadbalancer.RoundRobin, loadbalancer.SFC} {
		cfg := functionalCfg(cells, patches, 4, scheduler.ModeAsync, false)
		cfg.Balancer = strat
		got, _ := runAndGather(t, cfg, prob, u, 3)
		if d := field.MaxAbsDiff(got, ref, lv.Layout.Domain); d > 1e-13 {
			t.Fatalf("%v balancer differs from reference by %g", strat, d)
		}
	}
}

func TestGatherFieldRequiresFunctional(t *testing.T) {
	prob, u := burgersProblem(grid.IV(16, 16, 16), grid.IV(2, 2, 2), false)
	cfg := functionalCfg(grid.IV(16, 16, 16), grid.IV(2, 2, 2), 2, scheduler.ModeAsync, false)
	cfg.Scheduler.Functional = false
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GatherField(u); err == nil {
		t.Fatal("GatherField in timing-only mode should fail")
	}
}
