package core

import (
	"math"
	"testing"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
)

// TestParallelTileExecutionDeterministic proves the host worker pool that
// runs tile numerics in parallel changes no bits: for every Workers
// value, the gathered global field is float-for-float identical (compared
// by IEEE bit pattern), and identical to the fully serial configuration.
func TestParallelTileExecutionDeterministic(t *testing.T) {
	cells := grid.IV(32, 32, 16)
	patches := grid.IV(2, 2, 2)
	const nSteps = 3

	run := func(workers int) *field.Cell {
		prob, u := burgersProblem(cells, patches, false)
		cfg := functionalCfg(cells, patches, 2, scheduler.ModeAsync, false)
		cfg.Scheduler.Workers = workers
		got, _ := runAndGather(t, cfg, prob, u, nSteps)
		return got
	}

	ref := run(1)
	refData := ref.Data()
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		data := got.Data()
		if len(data) != len(refData) {
			t.Fatalf("workers=%d: field size %d != %d", workers, len(data), len(refData))
		}
		for i := range data {
			if math.Float64bits(data[i]) != math.Float64bits(refData[i]) {
				t.Fatalf("workers=%d: bit mismatch at linear index %d: %x != %x",
					workers, i, math.Float64bits(data[i]), math.Float64bits(refData[i]))
			}
		}
	}
}

// TestParallelTileExecutionDefaultWorkers runs the default (GOMAXPROCS)
// pool against the serial reference on the multi-variable vector system,
// which stages six LDM fields per tile — the heaviest deferred-op shape.
func TestParallelTileExecutionDefaultWorkers(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 1)
	prob, u := burgersProblem(cells, patches, false)
	const nSteps = 2

	serial := functionalCfg(cells, patches, 1, scheduler.ModeSync, false)
	serial.Scheduler.Workers = 1
	want, _ := runAndGather(t, serial, prob, u, nSteps)

	prob2, u2 := burgersProblem(cells, patches, false)
	pooled := functionalCfg(cells, patches, 1, scheduler.ModeSync, false)
	pooled.Scheduler.Workers = 0 // default: GOMAXPROCS
	got, _ := runAndGather(t, pooled, prob2, u2, nSteps)

	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if math.Float64bits(wd[i]) != math.Float64bits(gd[i]) {
			t.Fatalf("default workers diverge from serial at %d", i)
		}
	}
}
