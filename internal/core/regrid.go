package core

import (
	"fmt"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/loadbalancer"
	"sunuintah/internal/mpisim"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/sim"
	"sunuintah/internal/taskgraph"
)

// Regrid re-partitions the same computational grid into a new patch layout
// between Run segments — the "regridding is needed" arm of the paper's
// scheduler step 4. Old-warehouse data is redistributed from the old
// patches to the new ones (each new patch gathers the intersecting pieces
// of the old patches, over simulated MPI when the pieces live on another
// rank), the level and every rank's task graph are rebuilt, and the next
// Run continues from the same step.
//
// The new layout must tile the same cells. The new assignment follows the
// configured balancer strategy.
func (s *Simulation) Regrid(newPatchCounts grid.IVec) error {
	for _, t := range s.Prob.Tasks {
		if t.Patches != nil {
			return fmt.Errorf("core: Regrid does not support patch-filtered task %q (patch IDs change meaning across layouts; submit a new run with the new layout instead)", t.Name)
		}
	}
	newLevel, err := grid.NewUnitCubeLevel(s.Cfg.Cells, newPatchCounts)
	if err != nil {
		return err
	}
	newAssign, err := loadbalancer.AssignWithLayout(s.Cfg.Balancer, newLevel.Layout, len(s.Ranks))
	if err != nil {
		return err
	}

	labels, err := s.persistentLabels()
	if err != nil {
		return err
	}
	oldLevel := s.Level
	oldAssign := append([]int(nil), s.assign...)

	// A piece is the intersection of one old patch with one new patch:
	// the unit of redistribution.
	type piece struct {
		labelIdx int
		oldPatch *grid.Patch
		newPatch *grid.Patch
		region   grid.Box
		from, to int
	}
	var pieces []piece
	for _, np := range newLevel.Layout.Patches() {
		for _, op := range oldLevel.Layout.Patches() {
			region := np.Box.Intersect(op.Box)
			if region.Empty() {
				continue
			}
			for li := range labels {
				pieces = append(pieces, piece{
					labelIdx: li, oldPatch: op, newPatch: np, region: region,
					from: oldAssign[op.ID], to: newAssign[np.ID],
				})
			}
		}
	}

	// Stage new-layout fields on each receiving rank, then move pieces.
	// Same-rank pieces are direct copies; cross-rank pieces travel over
	// MPI with tags in the negative space (distinct from migration tags by
	// construction: one Regrid or Rebalance is in flight at a time).
	newGhost := map[*taskgraph.Label]int{}
	for _, l := range labels {
		newGhost[l] = s.Ranks[0].MaxGhost(l)
	}
	// newFields[rank] holds the new-layout old-warehouse data until the
	// schedulers are rebuilt.
	type varKey struct {
		labelIdx int
		patchID  int
	}
	newFields := make([]map[varKey]*fieldHolder, len(s.Ranks))
	for r := range newFields {
		newFields[r] = map[varKey]*fieldHolder{}
	}
	functional := s.Cfg.Scheduler.Functional

	tagOf := func(i int) int { return -(1 + i) }
	var firstErr error
	fail := func(p *sim.Process, err error) {
		s.runMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		s.runMu.Unlock()
		s.stopFrom(p)
	}
	for r, rk := range s.Ranks {
		r, rk := r, rk
		s.engs[r].Spawn(fmt.Sprintf("regrid%d", r), func(p *sim.Process) {
			params := rk.CoreGroup().Params
			// Allocate the new-layout variables this rank will own.
			for _, np := range newLevel.Layout.Patches() {
				if newAssign[np.ID] != r {
					continue
				}
				for li, l := range labels {
					h := &fieldHolder{patch: np, ghost: newGhost[l]}
					if functional {
						h.alloc()
					}
					newFields[r][varKey{li, np.ID}] = h
					p.Sleep(sim.Time(params.TouchTime(np.Box.Grow(h.ghost).NumCells() * 8)))
				}
			}
			// Receives first, then sends (eager sends cannot deadlock).
			type pendingIn struct {
				pc  piece
				idx int
				req *mpisim.Request
			}
			var incoming []pendingIn
			for i, pc := range pieces {
				if pc.to != r || pc.from == r {
					continue
				}
				incoming = append(incoming, pendingIn{pc, i, s.Comm.Rank(r).Irecv(p, pc.from, tagOf(i))})
			}
			for i, pc := range pieces {
				if pc.from != r {
					continue
				}
				bytes := pc.region.NumCells() * 8
				if pc.to == r {
					// Local re-tiling copy.
					h := newFields[r][varKey{pc.labelIdx, pc.newPatch.ID}]
					if functional {
						src := rk.DWs.Old.Get(labels[pc.labelIdx], pc.oldPatch)
						h.data.CopyRegion(src, pc.region)
					}
					p.Sleep(sim.Time(params.LocalCopyTime(2 * bytes)))
					continue
				}
				var payload []float64
				if functional {
					payload = rk.DWs.Old.Get(labels[pc.labelIdx], pc.oldPatch).Pack(pc.region, nil)
				}
				p.Sleep(sim.Time(params.LocalCopyTime(bytes)))
				s.Comm.Rank(r).Isend(p, pc.to, tagOf(i), payload, bytes)
			}
			for _, in := range incoming {
				s.Comm.Rank(r).Wait(p, in.req)
				bytes := in.pc.region.NumCells() * 8
				p.Sleep(sim.Time(params.LocalCopyTime(bytes)))
				if functional {
					h := newFields[r][varKey{in.pc.labelIdx, in.pc.newPatch.ID}]
					rest := h.data.Unpack(in.pc.region, in.req.Payload())
					if len(rest) != 0 {
						fail(p, fmt.Errorf("core: regrid payload mismatch for new patch %d", in.pc.newPatch.ID))
						return
					}
				}
			}
		})
	}
	s.drive()
	if firstErr != nil {
		return firstErr
	}

	// Tear down the old schedulers' warehouses and rebuild each rank on
	// the new level, seeding the fresh old warehouses from the staged
	// fields.
	s.Level = newLevel
	s.assign = newAssign
	for r := range s.Ranks {
		old := s.Ranks[r]
		old.DWs.Old.FreeAll()
		old.DWs.New.FreeAll()
		g, err := taskgraph.Compile(newLevel, s.Prob.Tasks, newAssign, r)
		if err != nil {
			return err
		}
		rk, err := scheduler.New(s.Cfg.Scheduler, g, s.Machine.CG(r), s.Comm.Rank(r))
		if err != nil {
			return err
		}
		for li, l := range labels {
			for _, np := range g.LocalPatches {
				if err := rk.DWs.Old.Allocate(l, np, newGhost[l]); err != nil {
					return err
				}
				if functional {
					h := newFields[r][varKey{li, np.ID}]
					rk.DWs.Old.Get(l, np).CopyRegion(h.data, np.Box)
				}
			}
		}
		s.Ranks[r] = rk
	}
	return nil
}

// fieldHolder stages one new-layout variable during regridding.
type fieldHolder struct {
	patch *grid.Patch
	ghost int
	data  *field.Cell
}

func (h *fieldHolder) alloc() { h.data = field.NewCellWithGhost(h.patch.Box, h.ghost) }
