package core

import (
	"encoding/json"
	"testing"

	"sunuintah/internal/faults"
	"sunuintah/internal/grid"
	"sunuintah/internal/obs"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/sim"
	"sunuintah/internal/taskgraph"
)

// TestCoreOptimisticBitIdentical extends the sharded engine's determinism
// contract to the Time-Warp coordinator: with Optimistic set, every shard
// count produces the same bytes — Result JSON and every field value — as
// the serial engine. The rank drivers are processes, so the coordinator
// reports its conservative fallback; bit-identity must hold either way.
func TestCoreOptimisticBitIdentical(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	const nSteps = 3

	base := func(mode scheduler.Mode, functional bool, cgs int) Config {
		return Config{
			Cells:       cells,
			PatchCounts: patches,
			NumCGs:      cgs,
			Scheduler: scheduler.Config{
				Mode:       mode,
				TileSize:   grid.IV(8, 8, 4),
				Functional: functional,
			},
		}
	}
	noCrash := &faults.Plan{Seed: 7, Drop: 0.1, Dup: 0.1, Delay: 0.1, Straggle: 0.1}

	cases := []struct {
		name string
		cfg  Config
	}{
		{"functional-async-8cg", base(scheduler.ModeAsync, true, 8)},
		{"timing-async-8cg", base(scheduler.ModeAsync, false, 8)},
		{"faulted-async-8cg", func() Config {
			c := base(scheduler.ModeAsync, true, 8)
			c.Faults = noCrash
			return c
		}()},
		{"obs-trace-async-8cg", func() Config {
			c := base(scheduler.ModeAsync, true, 8)
			c.Obs = &obs.Options{Trace: true}
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			refJSON, refField := shardRun(t, tc.cfg, nSteps)
			for _, shards := range []int{1, 2, 4, 8} {
				cfg := tc.cfg
				cfg.Shards = shards
				cfg.Optimistic = true
				gotJSON, gotField := shardRun(t, cfg, nSteps)
				if string(gotJSON) != string(refJSON) {
					t.Fatalf("shards=%d optimistic: result JSON differs from serial engine\nserial:     %s\noptimistic: %s",
						shards, refJSON, gotJSON)
				}
				if len(gotField) != len(refField) {
					t.Fatalf("shards=%d optimistic: field length %d != %d", shards, len(gotField), len(refField))
				}
				for i := range gotField {
					if gotField[i] != refField[i] {
						t.Fatalf("shards=%d optimistic: field[%d] = %g != %g (must be bit-identical)",
							shards, i, gotField[i], refField[i])
					}
				}
			}
		})
	}
}

// TestOptimisticDegradeReported: process-based rank drivers take the
// conservative fallback and the coordinator says so, rather than
// silently pretending to speculate.
func TestOptimisticDegradeReported(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	prob, _ := burgersProblem(cells, patches, false)
	cfg := Config{
		Cells:       cells,
		PatchCounts: patches,
		NumCGs:      4,
		Shards:      4,
		Optimistic:  true,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, TileSize: grid.IV(8, 8, 4), Functional: true},
	}
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if s.opt == nil {
		t.Fatal("Optimistic config did not build the Time-Warp coordinator")
	}
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	st, ok := s.OptStats()
	if !ok {
		t.Fatal("OptStats reports no optimistic coordinator")
	}
	if !st.Degraded {
		t.Error("process-based rank drivers must take the documented conservative fallback")
	}
}

// TestOptimisticCrashPlanForcesSerial: the rule crash-capable plans
// already impose on Shards extends to Optimistic — the run is serial (no
// coordinator at all), and the resilient result is byte-identical to the
// plain serial run.
func TestOptimisticCrashPlanForcesSerial(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	prob, _ := burgersProblem(cells, patches, false)
	cfg := Config{
		Cells:       cells,
		PatchCounts: patches,
		NumCGs:      4,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, TileSize: grid.IV(8, 8, 4), Functional: true},
		Faults:      &faults.Plan{Seed: 3, CrashAtStep: 2, CheckpointEvery: 2},
	}

	s, err := NewSimulation(func() Config {
		c := cfg
		c.Shards = 4
		c.Optimistic = true
		return c
	}(), prob)
	if err != nil {
		t.Fatal(err)
	}
	if s.shards != nil || s.opt != nil {
		t.Fatal("crash-capable plan must force the serial engine, optimistic or not")
	}

	serial, err := RunResilient(cfg, prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	cfg.Optimistic = true
	optimistic, err := RunResilient(cfg, prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(optimistic)
	if string(a) != string(b) {
		t.Fatalf("crash-plan results differ:\nserial:     %s\noptimistic: %s", a, b)
	}
}

// rankFingerprint packs everything the rank savers claim to rewind into
// comparable bytes: scheduler stats, measured patch costs, MPI traffic
// counters, machine counters, memory accounting, and the full field
// state of both warehouses.
func rankFingerprint(t *testing.T, s *Simulation, u *taskgraph.Label) []byte {
	t.Helper()
	type mpiCounters struct {
		BytesSent, BytesReceived, MsgsSent, MsgsReceived, TestCalls int64
		Resends, DupsDiscarded                                      int64
	}
	fp := struct {
		Stats      []scheduler.Stats
		PatchCosts []map[int]sim.Time
		MPI        []mpiCounters
		Counters   any
		PeakBytes  []int64
		Field      []float64
	}{Counters: s.Machine.TotalCounters()}
	for r, rk := range s.Ranks {
		fp.Stats = append(fp.Stats, rk.Stats)
		fp.PatchCosts = append(fp.PatchCosts, rk.PatchCosts())
		mr := s.Comm.Rank(r)
		fp.MPI = append(fp.MPI, mpiCounters{mr.BytesSent, mr.BytesReceived,
			mr.MsgsSent, mr.MsgsReceived, mr.TestCalls, mr.Resends, mr.DupsDiscarded})
		fp.PeakBytes = append(fp.PeakBytes, s.Machine.CG(r).PeakBytes())
	}
	f, err := s.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	fp.Field = f.Pack(s.Level.Layout.Domain, nil)
	blob, err := json.Marshal(&fp)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestRankRewindRoundTrip drives the in-memory StateSaver path end to
// end on real runtime state: after one step every rank's state is saved,
// a further step mutates everything (fields, counters, traffic, memory
// accounting), and restoring rewinds each layer byte-identically to the
// saved fingerprint — no serialisation anywhere.
func TestRankRewindRoundTrip(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	cfg := Config{
		Cells:       cells,
		PatchCounts: patches,
		NumCGs:      4,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, TileSize: grid.IV(8, 8, 4), Functional: true},
		// A fault plan exercises the deep-copied FaultStats and the MPI
		// duplicate-detection window.
		Faults: &faults.Plan{Seed: 7, Drop: 0.1, Dup: 0.1, Delay: 0.1, Straggle: 0.1},
	}
	prob, u := burgersProblem(cells, patches, false)
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1); err != nil {
		t.Fatal(err)
	}

	var rankSnaps, mpiSnaps []any
	for r, rk := range s.Ranks {
		rankSnaps = append(rankSnaps, rk.SaveState())
		mpiSnaps = append(mpiSnaps, s.Comm.Rank(r).SaveState())
	}
	want := rankFingerprint(t, s, u)

	if _, err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	if mutated := rankFingerprint(t, s, u); string(mutated) == string(want) {
		t.Fatal("second step left the fingerprint unchanged; the rewind test is vacuous")
	}

	for r, rk := range s.Ranks {
		rk.RestoreState(rankSnaps[r])
		s.Comm.Rank(r).RestoreState(mpiSnaps[r])
	}
	got := rankFingerprint(t, s, u)
	if string(got) != string(want) {
		t.Fatalf("rank rewind is not byte-identical\nsaved:    %s\nrestored: %s", want, got)
	}
}
