package core

import (
	"encoding/json"
	"testing"

	"sunuintah/internal/faults"
	"sunuintah/internal/grid"
	"sunuintah/internal/obs"
	"sunuintah/internal/scheduler"
)

// shardRun executes one case and returns its Result serialised to JSON
// plus the packed final field (nil in timing-only mode). Byte-equality of
// these artifacts is the sharded engine's contract: shards change only
// wall-clock speed, never the simulated outcome.
func shardRun(t *testing.T, cfg Config, nSteps int) ([]byte, []float64) {
	t.Helper()
	prob, u := burgersProblem(cfg.Cells, cfg.PatchCounts, cfg.Scheduler.SIMD)
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nSteps)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Scheduler.Functional {
		return blob, nil
	}
	f, err := s.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	return blob, f.Pack(s.Level.Layout.Domain, nil)
}

// TestShardedBitIdentical is the tentpole determinism guarantee: for every
// shard count the parallel engine produces byte-identical results — the
// Result JSON (timings, counters, stats) and, in functional mode, every
// field value — to the serial engine.
func TestShardedBitIdentical(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	const nSteps = 3

	base := func(mode scheduler.Mode, functional bool, cgs int) Config {
		return Config{
			Cells:       cells,
			PatchCounts: patches,
			NumCGs:      cgs,
			Scheduler: scheduler.Config{
				Mode:       mode,
				TileSize:   grid.IV(8, 8, 4),
				Functional: functional,
			},
		}
	}
	noCrash := &faults.Plan{Seed: 7, Drop: 0.1, Dup: 0.1, Delay: 0.1, Straggle: 0.1}

	cases := []struct {
		name string
		cfg  Config
	}{
		{"functional-async-8cg", base(scheduler.ModeAsync, true, 8)},
		{"functional-sync-4cg", base(scheduler.ModeSync, true, 4)},
		{"timing-async-8cg", base(scheduler.ModeAsync, false, 8)},
		{"faulted-async-8cg", func() Config {
			c := base(scheduler.ModeAsync, true, 8)
			c.Faults = noCrash
			return c
		}()},
		// Flight-recorder cases: Result.Obs (every sampled series, overlap,
		// roofline) and Result.Trace ride inside the compared JSON, so the
		// byte-identity contract extends to the whole report.
		{"obs-async-8cg", func() Config {
			c := base(scheduler.ModeAsync, false, 8)
			c.Obs = &obs.Options{}
			return c
		}()},
		{"obs-trace-faulted-8cg", func() Config {
			c := base(scheduler.ModeAsync, true, 8)
			c.Faults = noCrash
			c.Obs = &obs.Options{Trace: true}
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			refJSON, refField := shardRun(t, tc.cfg, nSteps)
			// shards=8 on the 8-CG cases puts exactly one rank in every
			// shard — the single-rank-shard edge of the latency matrix
			// (every pair crosses shards, none shares an engine).
			for _, shards := range []int{1, 2, 4, 8} {
				cfg := tc.cfg
				cfg.Shards = shards
				gotJSON, gotField := shardRun(t, cfg, nSteps)
				if string(gotJSON) != string(refJSON) {
					t.Fatalf("shards=%d: result JSON differs from serial engine\nserial:  %s\nsharded: %s",
						shards, refJSON, gotJSON)
				}
				if len(gotField) != len(refField) {
					t.Fatalf("shards=%d: field length %d != %d", shards, len(gotField), len(refField))
				}
				for i := range gotField {
					if gotField[i] != refField[i] {
						t.Fatalf("shards=%d: field[%d] = %g != %g (must be bit-identical)",
							shards, i, gotField[i], refField[i])
					}
				}
			}
		})
	}
}

// TestShardedCrashPlanForcesSerial checks the crash-capable fallback: a
// plan that can tear a run down runs on the serial engine regardless of
// the shard request (a crash is a zero-lookahead global event), and the
// resilient result is byte-identical either way.
func TestShardedCrashPlanForcesSerial(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	prob, _ := burgersProblem(cells, patches, false)
	cfg := Config{
		Cells:       cells,
		PatchCounts: patches,
		NumCGs:      4,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, TileSize: grid.IV(8, 8, 4), Functional: true},
		Faults:      &faults.Plan{Seed: 3, CrashAtStep: 2, CheckpointEvery: 2},
	}

	s, err := NewSimulation(func() Config { c := cfg; c.Shards = 4; return c }(), prob)
	if err != nil {
		t.Fatal(err)
	}
	if s.shards != nil {
		t.Fatal("crash-capable plan must force the serial engine")
	}

	serial, err := RunResilient(cfg, prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	sharded, err := RunResilient(cfg, prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(sharded)
	if string(a) != string(b) {
		t.Fatalf("crash-plan results differ:\nserial:  %s\nsharded: %s", a, b)
	}
}

// TestShardsReportUnderCrashPlan: the flight recorder under
// checkpoint/restart — a crash-plan run (forced serial regardless of the
// shard request) carries a report from the surviving incarnation, and the
// report is byte-identical whatever Shards asked for.
func TestShardsReportUnderCrashPlan(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	prob, _ := burgersProblem(cells, patches, false)
	cfg := Config{
		Cells:       cells,
		PatchCounts: patches,
		NumCGs:      4,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, TileSize: grid.IV(8, 8, 4), Functional: true},
		Faults:      &faults.Plan{Seed: 3, CrashAtStep: 2, CheckpointEvery: 2},
		Obs:         &obs.Options{Trace: true},
	}

	serial, err := RunResilient(cfg, prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Obs == nil || serial.Obs.Samples == 0 {
		t.Fatal("resilient run has no flight-recorder report")
	}
	if len(serial.Trace) == 0 {
		t.Fatal("resilient run has no trace")
	}
	if serial.Obs.Roofline == nil || len(serial.Obs.Overlap) != 4 {
		t.Fatalf("report missing roofline/overlap: %+v", serial.Obs)
	}
	cfg.Shards = 4
	sharded, err := RunResilient(cfg, prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(sharded)
	if string(a) != string(b) {
		t.Fatalf("crash-plan reports differ:\nserial:  %s\nsharded: %s", a, b)
	}
}

// TestNegativeShardsRejected: the validation satellite — a negative shard
// count is a configuration error with a clear message, not a panic deep
// in the engine.
func TestNegativeShardsRejected(t *testing.T) {
	cells := grid.IV(8, 8, 8)
	prob, _ := burgersProblem(cells, grid.IV(1, 1, 1), false)
	cfg := Config{
		Cells:       cells,
		PatchCounts: grid.IV(1, 1, 1),
		NumCGs:      1,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeSync, Functional: false},
		Shards:      -2,
	}
	if _, err := NewSimulation(cfg, prob); err == nil {
		t.Fatal("want error for Shards = -2, got nil")
	}
}

// TestShardsClampedToRanks: asking for more shards than ranks silently
// clamps (one rank per shard is the finest useful partition).
func TestShardsClampedToRanks(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	prob, _ := burgersProblem(cells, patches, false)
	cfg := Config{
		Cells:       cells,
		PatchCounts: patches,
		NumCGs:      2,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, TileSize: grid.IV(8, 8, 4), Functional: false},
		Shards:      16,
	}
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if s.shards == nil || s.shards.NumShards() != 2 {
		t.Fatalf("want 2 shards for 2 ranks, got %v", s.shards)
	}
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescedPollingReducesEvents: the polling-coalescing satellite.
// Batching a rank's same-instant completion polls into one event must
// shrink the event count on the sync scheduler while leaving the Result
// byte-identical.
func TestCoalescedPollingReducesEvents(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	const nSteps = 3

	run := func(coalesce bool) ([]byte, uint64) {
		prob, _ := burgersProblem(cells, patches, false)
		cfg := Config{
			Cells:       cells,
			PatchCounts: patches,
			NumCGs:      8,
			Scheduler:   scheduler.Config{Mode: scheduler.ModeSync, TileSize: grid.IV(8, 8, 4), Functional: false},
		}
		s, err := NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		s.Comm.SetTestCoalescing(coalesce)
		res, err := s.Run(nSteps)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return blob, s.eng.EventsExecuted()
	}

	onJSON, onEvents := run(true)
	offJSON, offEvents := run(false)
	if string(onJSON) != string(offJSON) {
		t.Fatalf("coalescing changed the result:\non:  %s\noff: %s", onJSON, offJSON)
	}
	if onEvents >= offEvents {
		t.Fatalf("coalescing did not reduce events: %d (on) >= %d (off)", onEvents, offEvents)
	}
	t.Logf("events: %d coalesced vs %d uncoalesced (%.1f%% fewer)",
		onEvents, offEvents, 100*(1-float64(onEvents)/float64(offEvents)))
}
