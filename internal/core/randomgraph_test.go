package core

import (
	"fmt"
	"math/rand"
	"testing"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

// randomProblem generates a random chain of offloadable tasks over a
// persistent state label u and a set of intermediate labels:
//
//	t1: v1 = f1(u@old±ghost)
//	t2: v2 = f2(u@old, v1@new)
//	...
//	tN: u  = fN(u@old±ghost, v_{N-1}@new)
//
// Every kernel is a linear stencil with seed-derived coefficients, so the
// scheduled distributed execution can be checked cell-for-cell against a
// sequential whole-domain evaluation of the same task chain.
type randomProblem struct {
	u      *taskgraph.Label
	inters []*taskgraph.Label
	tasks  []*taskgraph.Task
	ghosts []int
	coefs  [][3]float64
}

func buildRandomProblem(rng *rand.Rand) *randomProblem {
	rp := &randomProblem{}
	// Zero Dirichlet boundary: nil BC function fills ghosts with 0 in both
	// the runtime and the reference.
	rp.u = taskgraph.NewLabel("state", nil)
	nInter := rng.Intn(3) // 0..2 intermediate stages

	mkKernel := func(in *taskgraph.Label, ghost int, extra *taskgraph.Label, out *taskgraph.Label, coef [3]float64) *taskgraph.Kernel {
		return &taskgraph.Kernel{
			FlopsPerCell: 10,
			Weight:       0.2,
			Compute: func(tc *taskgraph.TileContext) {
				src := tc.In[in]
				var ex *taskgraph.LDMData
				if extra != nil {
					ex = tc.In[extra]
				}
				dst := tc.Out[out]
				tc.Tile.Box.ForEach(func(c grid.IVec) {
					v := coef[0] * src.Data.At(c)
					if ghost > 0 {
						v += coef[1] * (src.Data.At(c.Add(grid.IV(1, 0, 0))) +
							src.Data.At(c.Sub(grid.IV(0, 1, 0))) +
							src.Data.At(c.Add(grid.IV(0, 0, 1))))
					}
					if ex != nil {
						v += coef[2] * ex.Data.At(c)
					}
					dst.Data.Set(c, v)
				})
			},
		}
	}

	var prev *taskgraph.Label
	for i := 0; i <= nInter; i++ {
		last := i == nInter
		out := rp.u
		if !last {
			out = taskgraph.NewLabel(fmt.Sprintf("inter%d", i), nil)
			rp.inters = append(rp.inters, out)
		}
		ghost := rng.Intn(2)
		coef := [3]float64{
			0.5 + rng.Float64(),
			(rng.Float64() - 0.5) * 0.1,
			(rng.Float64() - 0.5) * 0.5,
		}
		reqs := []taskgraph.Dep{{Label: rp.u, DW: taskgraph.OldDW, Ghost: ghost}}
		var extra *taskgraph.Label
		if prev != nil && rng.Intn(2) == 0 {
			extra = prev
			reqs = append(reqs, taskgraph.Dep{Label: prev, DW: taskgraph.NewDW})
		}
		rp.tasks = append(rp.tasks, &taskgraph.Task{
			Name:     fmt.Sprintf("stage%d", i),
			Kind:     taskgraph.KindOffload,
			Requires: reqs,
			Computes: []taskgraph.Dep{{Label: out, DW: taskgraph.NewDW}},
			Kernel:   mkKernel(rp.u, ghost, extra, out, coef),
		})
		rp.ghosts = append(rp.ghosts, ghost)
		rp.coefs = append(rp.coefs, coef)
		prev = out
	}
	return rp
}

// reference executes the task chain sequentially on whole-domain fields,
// reusing each task's own kernel body via a domain-sized tile context.
func (rp *randomProblem) reference(lv *grid.Level, init func(x, y, z float64) float64, steps int) *field.Cell {
	dom := lv.Layout.Domain
	maxGhost := 1
	state := field.NewCellWithGhost(dom, maxGhost)
	state.FillFunc(dom, func(c grid.IVec) float64 {
		x, y, z := lv.CellCenter(c)
		return init(x, y, z)
	})
	for s := 0; s < steps; s++ {
		newVars := map[*taskgraph.Label]*field.Cell{}
		for _, task := range rp.tasks {
			outLabel := task.Computes[0].Label
			out := field.NewCellWithGhost(dom, maxGhost)
			inMap := map[*taskgraph.Label]*taskgraph.LDMData{}
			for _, d := range task.Requires {
				var f *field.Cell
				if d.DW == taskgraph.OldDW {
					f = state
				} else {
					f = newVars[d.Label]
				}
				inMap[d.Label] = &taskgraph.LDMData{Region: dom.Grow(d.Ghost), Data: f}
			}
			outMap := map[*taskgraph.Label]*taskgraph.LDMData{
				outLabel: {Region: dom, Data: out},
			}
			task.Kernel.Compute(&taskgraph.TileContext{
				Patch: lv.Layout.Patch(0), Tile: grid.Tile{Box: dom},
				In: inMap, Out: outMap, Step: s, Level: lv,
			})
			newVars[outLabel] = out
		}
		state = newVars[rp.u] // ghosts are zero from allocation, as the BC fills them
	}
	return state
}

func TestPropertyRandomTaskChainsMatchReference(t *testing.T) {
	init := func(x, y, z float64) float64 {
		return 1 + 0.5*x + 0.25*y*y + 0.125*z
	}
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			rp := buildRandomProblem(rng)
			cells := grid.IV(12, 12, 12)
			patches := grid.IV(2, 2, 2)
			cgs := []int{1, 2, 4, 8}[rng.Intn(4)]
			mode := []scheduler.Mode{scheduler.ModeMPEOnly, scheduler.ModeSync, scheduler.ModeAsync}[rng.Intn(3)]
			steps := 1 + rng.Intn(3)

			lv, err := grid.NewUnitCubeLevel(cells, patches)
			if err != nil {
				t.Fatal(err)
			}
			want := rp.reference(lv, init, steps)

			prob := Problem{
				Tasks:   rp.tasks,
				Initial: map[*taskgraph.Label]func(x, y, z float64) float64{rp.u: init},
				Dt:      1e-3,
			}
			cfg := Config{
				Cells:       cells,
				PatchCounts: patches,
				NumCGs:      cgs,
				Scheduler: scheduler.Config{
					Mode:       mode,
					TileSize:   grid.IV(6, 6, 3),
					Functional: true,
				},
			}
			s, err := NewSimulation(cfg, prob)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(steps); err != nil {
				t.Fatal(err)
			}
			got, err := s.GatherField(rp.u)
			if err != nil {
				t.Fatal(err)
			}
			if d := field.MaxAbsDiff(got, want, lv.Layout.Domain); d > 1e-12 {
				t.Fatalf("seed %d (%d tasks, %d CGs, %v, %d steps): max diff %g",
					seed, len(rp.tasks), cgs, mode, steps, d)
			}
		})
	}
}
