package core

import (
	"strings"
	"testing"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

// copyTask builds an MPE task that carries label l through the step
// unchanged — the minimal persistent-state problem.
func copyTask(name string, l *taskgraph.Label) *taskgraph.Task {
	return &taskgraph.Task{
		Name: name, Kind: taskgraph.KindMPE,
		Requires: []taskgraph.Dep{{Label: l, DW: taskgraph.OldDW}},
		Computes: []taskgraph.Dep{{Label: l, DW: taskgraph.NewDW}},
		MPERun: func(patch *grid.Patch, in, out map[*taskgraph.Label]*field.Cell) {
			out[l].CopyRegion(in[l], patch.Box)
		},
	}
}

// checkpointSim builds a small functional simulation around the given
// tasks and initial conditions.
func checkpointSim(t *testing.T, tasks []*taskgraph.Task, initial map[*taskgraph.Label]func(x, y, z float64) float64) *Simulation {
	t.Helper()
	cfg := functionalCfg(grid.IV(8, 8, 8), grid.IV(2, 1, 1), 2, scheduler.ModeMPEOnly, false)
	s, err := NewSimulation(cfg, Problem{Tasks: tasks, Initial: initial, Dt: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wantErrContaining(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error containing %q, got nil", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("want error containing %q, got: %v", frag, err)
	}
}

// TestCheckpointDuplicateLabelRejected: two distinct labels sharing a
// name cannot be checkpointed — the format identifies labels by name, and
// both Checkpoint and RestoreFromMemory must reject the ambiguity.
func TestCheckpointDuplicateLabelRejected(t *testing.T) {
	a := taskgraph.NewLabel("dup", nil)
	b := taskgraph.NewLabel("dup", nil)
	flat := func(x, y, z float64) float64 { return 1 }
	s := checkpointSim(t, []*taskgraph.Task{copyTask("copyA", a), copyTask("copyB", b)},
		map[*taskgraph.Label]func(x, y, z float64) float64{a: flat, b: flat})

	_, err := s.Checkpoint()
	wantErrContaining(t, err, "duplicate label name")

	// The restore side hits the same validation before touching any data.
	good := simpleCheckpointSource(t)
	ckpt, err := good.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	wantErrContaining(t, s.RestoreFromMemory(ckpt), "duplicate label name")
}

// simpleCheckpointSource builds a one-label functional simulation and
// returns it (for producing valid checkpoints to corrupt).
func simpleCheckpointSource(t *testing.T) *Simulation {
	t.Helper()
	l := taskgraph.NewLabel("v", nil)
	return checkpointSim(t, []*taskgraph.Task{copyTask("copy", l)},
		map[*taskgraph.Label]func(x, y, z float64) float64{l: func(x, y, z float64) float64 { return x + 2*y + 3*z }})
}

// TestCheckpointGridMismatchRejected: a checkpoint restores only into a
// simulation with the identical grid and patch layout.
func TestCheckpointGridMismatchRejected(t *testing.T) {
	src := simpleCheckpointSource(t)
	ckpt, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	wrongCells := *ckpt
	wrongCells.Cells = grid.IV(16, 16, 16)
	wantErrContaining(t, simpleCheckpointSource(t).RestoreFromMemory(&wrongCells), "does not match simulation")

	wrongPatches := *ckpt
	wrongPatches.PatchCounts = grid.IV(1, 2, 1)
	wantErrContaining(t, simpleCheckpointSource(t).RestoreFromMemory(&wrongPatches), "does not match simulation")
}

// TestCheckpointLabelCountRejected: a checkpoint carrying more or fewer
// labels than the problem's persistent set is rejected, as is a matching
// count with an unknown name.
func TestCheckpointLabelCountRejected(t *testing.T) {
	src := simpleCheckpointSource(t)
	ckpt, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	extra := *ckpt
	extra.Labels = append(append([]string(nil), ckpt.Labels...), "ghostlabel")
	extra.Data = append(append([][][]float64(nil), ckpt.Data...), nil)
	wantErrContaining(t, simpleCheckpointSource(t).RestoreFromMemory(&extra), "labels")

	renamed := *ckpt
	renamed.Labels = []string{"nosuch"}
	wantErrContaining(t, simpleCheckpointSource(t).RestoreFromMemory(&renamed), "not in this problem")
}

// TestCheckpointUnpackMismatchRejected: per-patch data whose length does
// not match the patch's cell count is rejected before any value lands in
// a warehouse.
func TestCheckpointUnpackMismatchRejected(t *testing.T) {
	src := simpleCheckpointSource(t)
	ckpt, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	corrupt := *ckpt
	corrupt.Data = append([][][]float64(nil), ckpt.Data...)
	corrupt.Data[0] = append([][]float64(nil), ckpt.Data[0]...)
	corrupt.Data[0][0] = corrupt.Data[0][0][:len(corrupt.Data[0][0])-1]
	wantErrContaining(t, simpleCheckpointSource(t).RestoreFromMemory(&corrupt), "values, want")
}

// TestCheckpointTimingOnlyRejected: both directions of the in-memory path
// require functional mode (a timing-only run has no field data).
func TestCheckpointTimingOnlyRejected(t *testing.T) {
	src := simpleCheckpointSource(t)
	ckpt, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	cfg := functionalCfg(grid.IV(8, 8, 8), grid.IV(2, 1, 1), 2, scheduler.ModeMPEOnly, false)
	cfg.Scheduler.Functional = false
	l := taskgraph.NewLabel("v", nil)
	s, err := NewSimulation(cfg, Problem{
		Tasks: []*taskgraph.Task{copyTask("copy", l)},
		Dt:    1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Checkpoint()
	wantErrContaining(t, err, "functional mode")
	wantErrContaining(t, s.RestoreFromMemory(ckpt), "functional mode")
}

// TestCheckpointMemoryRoundTrip: the in-memory path RunResilient now
// uses — Checkpoint into RestoreFromMemory with no serialisation —
// reproduces the uninterrupted run's field bytes.
func TestCheckpointMemoryRoundTrip(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	prob, u := burgersProblem(cells, patches, false)
	cfg := functionalCfg(cells, patches, 4, scheduler.ModeAsync, false)

	s1, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(3); err != nil {
		t.Fatal(err)
	}
	ckpt, err := s1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(3); err != nil {
		t.Fatal(err)
	}
	ref, err := s1.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}

	s2, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.RestoreFromMemory(ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(3); err != nil {
		t.Fatal(err)
	}
	got, err := s2.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	refPacked := ref.Pack(s1.Level.Layout.Domain, nil)
	gotPacked := got.Pack(s2.Level.Layout.Domain, nil)
	for i := range refPacked {
		if refPacked[i] != gotPacked[i] {
			t.Fatalf("restored run diverges at cell %d: %g != %g", i, gotPacked[i], refPacked[i])
		}
	}
}
