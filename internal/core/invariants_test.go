package core

import (
	"math"
	"testing"

	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

// TestTimingOnlyMatchesFunctionalWallTime locks in the central invariant
// of the two run modes: a timing-only run must charge exactly the same
// virtual time and counters as a functional run of the same
// configuration — the control flow is identical, only field storage
// differs. (The scheduler's timing-only fast path for uniform tilings is
// constructed to charge precisely what the per-tile path charges.)
func TestTimingOnlyMatchesFunctionalWallTime(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cells grid.IVec
		tile  grid.IVec
		mode  scheduler.Mode
	}{
		{"uniform-tiling-async", grid.IV(32, 32, 32), grid.IV(8, 8, 4), scheduler.ModeAsync},
		{"clipped-tiling-async", grid.IV(36, 36, 36), grid.IV(8, 8, 4), scheduler.ModeAsync},
		{"uniform-tiling-sync", grid.IV(32, 32, 32), grid.IV(8, 8, 4), scheduler.ModeSync},
		{"host-mode", grid.IV(32, 32, 32), grid.IV(8, 8, 4), scheduler.ModeMPEOnly},
	} {
		t.Run(tc.name, func(t *testing.T) {
			patches := grid.IV(2, 2, 2)
			if tc.cells.X%2 != 0 {
				t.Fatal("bad test config")
			}
			run := func(functional bool) *Result {
				prob, _ := burgersProblem(tc.cells, patches, false)
				cfg := Config{
					Cells:       tc.cells,
					PatchCounts: patches,
					NumCGs:      2,
					Scheduler: scheduler.Config{
						Mode:       tc.mode,
						TileSize:   tc.tile,
						Functional: functional,
					},
				}
				s, err := NewSimulation(cfg, prob)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(2)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			fn := run(true)
			tm := run(false)
			if math.Abs(float64(fn.WallTime-tm.WallTime)) > 1e-12 {
				t.Fatalf("wall time differs: functional %v vs timing-only %v",
					fn.WallTime, tm.WallTime)
			}
			if fn.Counters != tm.Counters {
				t.Fatalf("counters differ:\nfunctional  %+v\ntiming-only %+v",
					fn.Counters, tm.Counters)
			}
		})
	}
}

// TestSIMDVariantFasterButSameFlops: vectorisation changes time, never the
// counted work.
func TestSIMDVariantFasterButSameFlops(t *testing.T) {
	run := func(simd bool) *Result {
		cells := grid.IV(64, 64, 128)
		prob, _ := burgersProblem(cells, grid.IV(2, 2, 2), simd)
		cfg := Config{
			Cells:       cells,
			PatchCounts: grid.IV(2, 2, 2),
			NumCGs:      2,
			Scheduler:   scheduler.Config{Mode: scheduler.ModeSync, SIMD: simd},
		}
		s, err := NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scalar := run(false)
	simd := run(true)
	if simd.WallTime >= scalar.WallTime {
		t.Fatalf("simd (%v) not faster than scalar (%v)", simd.WallTime, scalar.WallTime)
	}
	if simd.Counters.Flops != scalar.Counters.Flops {
		t.Fatalf("flop counts differ: %d vs %d", simd.Counters.Flops, scalar.Counters.Flops)
	}
}

// TestMoreCGsNeverSlower: strong scaling is monotone in this deterministic
// model.
func TestMoreCGsNeverSlower(t *testing.T) {
	cells := grid.IV(64, 64, 128)
	prev := math.Inf(1)
	for _, cgs := range []int{1, 2, 4, 8} {
		prob, _ := burgersProblem(cells, grid.IV(2, 2, 2), false)
		cfg := Config{
			Cells:       cells,
			PatchCounts: grid.IV(2, 2, 2),
			NumCGs:      cgs,
			Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync},
		}
		s, err := NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.PerStep) > prev {
			t.Fatalf("%d CGs slower than %d CGs", cgs, cgs/2)
		}
		prev = float64(res.PerStep)
	}
}

// TestStepsScaleLinearly: per-step cost is step-count independent.
func TestStepsScaleLinearly(t *testing.T) {
	run := func(steps int) float64 {
		cells := grid.IV(32, 32, 64)
		prob, _ := burgersProblem(cells, grid.IV(2, 2, 2), false)
		cfg := Config{
			Cells:       cells,
			PatchCounts: grid.IV(2, 2, 2),
			NumCGs:      4,
			Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync},
		}
		s, err := NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(steps)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.PerStep)
	}
	a, b := run(2), run(8)
	if rel := math.Abs(a-b) / b; rel > 0.15 {
		t.Fatalf("per-step time not step-independent: %v vs %v (rel %.2f)", a, b, rel)
	}
}

// TestScrubbingLowersMemoryHighWater: a two-stage chain allocates an
// intermediate variable per patch; with scrubbing it is freed as soon as
// the consumer finishes, so the high-water mark drops while the solution
// is unchanged.
func TestScrubbingLowersMemoryHighWater(t *testing.T) {
	u := taskgraph.NewLabel("u", nil)
	v := taskgraph.NewLabel("v", nil)
	stage1 := &taskgraph.Task{
		Name: "stage1", Kind: taskgraph.KindOffload,
		Requires: []taskgraph.Dep{{Label: u, DW: taskgraph.OldDW, Ghost: 1}},
		Computes: []taskgraph.Dep{{Label: v, DW: taskgraph.NewDW}},
		Kernel: &taskgraph.Kernel{Weight: 0.1, Compute: func(tc *taskgraph.TileContext) {
			tc.Tile.Box.ForEach(func(c grid.IVec) {
				tc.Out[v].Data.Set(c, 2*tc.In[u].Data.At(c))
			})
		}},
	}
	stage2 := &taskgraph.Task{
		Name: "stage2", Kind: taskgraph.KindOffload,
		Requires: []taskgraph.Dep{{Label: v, DW: taskgraph.NewDW}},
		Computes: []taskgraph.Dep{{Label: u, DW: taskgraph.NewDW}},
		Kernel: &taskgraph.Kernel{Weight: 0.1, Compute: func(tc *taskgraph.TileContext) {
			tc.Tile.Box.ForEach(func(c grid.IVec) {
				tc.Out[u].Data.Set(c, tc.In[v].Data.At(c)+1)
			})
		}},
	}
	run := func(scrub bool) (*Result, *field.Cell) {
		prob := Problem{
			Tasks:   []*taskgraph.Task{stage1, stage2},
			Initial: map[*taskgraph.Label]func(x, y, z float64) float64{u: func(x, y, z float64) float64 { return x + y + z }},
			Dt:      1e-3,
		}
		cfg := Config{
			Cells:       grid.IV(16, 16, 16),
			PatchCounts: grid.IV(2, 2, 2),
			NumCGs:      1,
			Scheduler: scheduler.Config{Mode: scheduler.ModeSync, Functional: true,
				TileSize: grid.IV(8, 8, 4), Scrub: scrub},
		}
		s, err := NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		f, err := s.GatherField(u)
		if err != nil {
			t.Fatal(err)
		}
		return res, f
	}
	resNo, fNo := run(false)
	resYes, fYes := run(true)
	if resYes.PeakMemoryBytes >= resNo.PeakMemoryBytes {
		t.Fatalf("scrubbing did not lower the high-water mark: %d vs %d",
			resYes.PeakMemoryBytes, resNo.PeakMemoryBytes)
	}
	dom := grid.BoxFromSize(grid.IV(0, 0, 0), grid.IV(16, 16, 16))
	if d := field.MaxAbsDiff(fNo, fYes, dom); d != 0 {
		t.Fatalf("scrubbing changed the solution by %g", d)
	}
}
