// Package core is the public runtime API of the ported Uintah framework:
// users describe their problem as coarse tasks over a patch-decomposed
// grid (package taskgraph), and a SimulationController executes timesteps
// on a simulated Sunway TaihuLight — one MPI rank per core group, each
// running the Sunway-specific MPE/CPE scheduler of package scheduler.
//
// Two run modes share identical control flow: functional mode computes
// real field data (validated against reference solutions), timing-only
// mode executes the same scheduling, communication and cost accounting
// without allocating field storage, so the paper's 1024^3-cell experiments
// run on a laptop.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sunuintah/internal/faults"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/loadbalancer"
	"sunuintah/internal/mpisim"
	"sunuintah/internal/obs"
	"sunuintah/internal/perf"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/sim"
	"sunuintah/internal/sw26010"
	"sunuintah/internal/taskgraph"
	"sunuintah/internal/trace"
)

// Config selects the machine and scheduler configuration of a run.
type Config struct {
	// Cells is the global grid size; PatchCounts the patch layout (the
	// paper fixes 8x8x2 = 128 patches).
	Cells       grid.IVec
	PatchCounts grid.IVec
	// NumCGs is the number of core groups (MPI ranks).
	NumCGs int
	// Shards partitions the ranks into that many host-parallel engine
	// shards advanced by a conservative lookahead coordinator; 0 (or 1)
	// runs the classic serial engine. Results are bit-identical for every
	// value — sharding is purely a wall-clock knob, clamped to NumCGs.
	// Plans that can crash a core group force serial execution (a crash is
	// an immediate global teardown, incompatible with lookahead).
	Shards int
	// Optimistic coordinates the shards with the Time-Warp engine
	// (sim.OptimisticShardSet) instead of the conservative one: every
	// rank's warehouse pair, scheduler counters and MPI counters are
	// registered as rewindable state, so shards may speculate past their
	// lookahead windows and roll back on stragglers. Like Shards it is a
	// wall-clock knob only — results stay bit-identical for every setting
	// and it never enters the runner's spec hash. The rank drivers are
	// process-based today, so the coordinator takes its documented
	// conservative fallback (OptStats().Degraded) until they become
	// event-driven; crash-capable fault plans force serial execution
	// exactly as they do for Shards. No-op unless Shards > 1.
	Optimistic bool
	// OptMaxDepth bounds speculation depth (quanta past the conservative
	// window); 0 means the default (4). Ignored unless Optimistic.
	OptMaxDepth int
	// Scheduler picks the variant (mode, SIMD, tile size, extensions).
	Scheduler scheduler.Config
	// Params is the machine model; zero value means perf.DefaultParams.
	Params *perf.Params
	// Balancer distributes patches over ranks (default Block).
	Balancer loadbalancer.Strategy
	// Faults, when non-nil and non-zero, injects deterministic faults into
	// the substrate (see package faults). Crash events only fire under
	// RunResilient, which also recovers from them.
	Faults *faults.Plan
	// Obs, when non-nil, attaches the flight recorder: virtual-time series
	// sampling across every layer plus overlap and roofline summaries in
	// Result.Obs. A reporting knob only — it never changes scheduling,
	// timing, or numerics, and the report is bit-identical across Shards
	// and host-parallelism settings.
	Obs *obs.Options
	// Progress, when non-nil, receives one update per rank per completed
	// timestep — the live feed behind sunserver's SSE endpoint. It is
	// called from simulation goroutines (several concurrently under
	// sharding), so it must be cheap and concurrency-safe; it can observe
	// the run but never affect it, and like Obs it stays outside the
	// runner's content hash.
	Progress func(ProgressUpdate)
}

// ProgressUpdate is one Config.Progress callback payload: rank Rank just
// finished 0-based global timestep Step. Done/Total count (rank, step)
// pairs within the current Run segment, so Done/Total is the segment's
// completion fraction.
type ProgressUpdate struct {
	Rank           int
	Step           int
	Steps          int // timesteps in this Run segment
	Done           int64
	Total          int64
	VirtualSeconds float64 // the rank's clock at step completion
}

// Problem is a user-defined simulation: its task list plus initial
// conditions and the timestep.
type Problem struct {
	Tasks []*taskgraph.Task
	// Initial supplies t=0 values for every label required from the old
	// warehouse (functional mode).
	Initial map[*taskgraph.Label]func(x, y, z float64) float64
	// Dt is the (fixed, stability-chosen) timestep size.
	Dt float64
}

// Simulation is a configured run: grid, machine, communicator and one
// scheduler per rank.
type Simulation struct {
	Cfg     Config
	Prob    Problem
	Level   *grid.Level
	Machine *sw26010.Machine
	Comm    *mpisim.Comm
	Ranks   []*scheduler.Rank

	// eng is the serial engine, or shard 0's engine under sharding;
	// engs[r] is the engine that owns rank r (all aliases of eng when
	// serial) and shards is the coordinator (nil when serial).
	eng    *sim.Engine
	engs   []*sim.Engine
	shards *sim.ShardSet
	// opt is the Time-Warp coordinator over shards (nil unless
	// Cfg.Optimistic took effect); shardOf[r] is rank r's shard index.
	opt     *sim.OptimisticShardSet
	shardOf []int
	// runMu guards the error/crash fields written by concurrently
	// executing shard goroutines.
	runMu  sync.Mutex
	assign []int
	// stepsDone and timeDone track progress across multiple Run calls, so
	// a simulation can be advanced, rebalanced or checkpointed, and
	// advanced further.
	stepsDone int
	timeDone  float64

	// Fault plane: the injector shared by the whole simulation, the armed
	// crash point (crashStep is 1-based; 0 means disarmed), and the crash
	// that tore the run down, if any.
	inj       *faults.Injector
	crashRank int
	crashStep int
	crashFrac float64
	crashed   *CrashError

	// sampler is the flight recorder (nil unless Cfg.Obs is set); specRec
	// records per-window engine telemetry when the run is both observed
	// and sharded.
	sampler *obs.Sampler
	specRec *obs.SpecRecorder
}

// Result summarises a completed run.
type Result struct {
	Steps    int
	WallTime sim.Time // virtual time of the slowest rank
	// PerStep is WallTime / Steps, the paper's performance indicator.
	PerStep sim.Time
	// StepEnds[s] is the virtual time at which the slowest rank finished
	// step s.
	StepEnds []sim.Time
	// Counters aggregates the machine's hardware counters.
	Counters sw26010.Counters
	// Gflops is the floating-point rate over the run, counted like the
	// paper's Figure 9: CPE-counter flops (plus MPE kernel flops in host
	// mode) divided by wall time.
	Gflops float64
	// Efficiency is Gflops over the theoretical peak of the running CGs
	// (Figure 10).
	Efficiency float64
	// RankStats holds each rank's scheduler statistics.
	RankStats []scheduler.Stats
	// BytesOnWire is the total MPI traffic.
	BytesOnWire int64
	// PeakMemoryBytes is the largest per-CG field-memory high-water mark
	// observed so far (cumulative across segments).
	PeakMemoryBytes int64
	// Faults reports injected faults and recoveries; nil (and absent from
	// JSON) on fault-free runs.
	Faults *FaultReport `json:"Faults,omitempty"`
	// Obs is the flight-recorder report; nil (and absent from JSON) unless
	// Config.Obs was set.
	Obs *obs.Report `json:"Obs,omitempty"`
	// Trace is the run's event timeline in canonical order; populated only
	// when Config.Obs requests it (Options.Trace).
	Trace []trace.Event `json:"Trace,omitempty"`
	// Opt carries the Time-Warp coordinator's counters for optimistic
	// runs; nil otherwise. Deliberately excluded from JSON: the counters
	// depend on the Shards/OptMaxDepth knobs, and Result JSON is the
	// byte-identity surface the shard and optimistic gates compare.
	Opt *sim.OptStats `json:"-"`
	// Speculation is the per-window engine telemetry recorded when both
	// Config.Obs is set and the run is sharded (conservative or
	// Time-Warp); nil otherwise. Excluded from JSON for the same reason
	// as Opt — windows are an engine artifact, not a model observable.
	Speculation *obs.SpecReport `json:"-"`
}

// NewSimulation validates and assembles a run.
func NewSimulation(cfg Config, prob Problem) (*Simulation, error) {
	if cfg.NumCGs <= 0 {
		return nil, fmt.Errorf("core: NumCGs must be positive, got %d", cfg.NumCGs)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: Shards must be >= 0 (0 = serial engine), got %d", cfg.Shards)
	}
	if prob.Dt <= 0 {
		return nil, fmt.Errorf("core: Problem.Dt must be positive, got %v", prob.Dt)
	}
	if len(prob.Tasks) == 0 {
		return nil, fmt.Errorf("core: problem declares no tasks")
	}
	params := perf.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	level, err := grid.NewUnitCubeLevel(cfg.Cells, cfg.PatchCounts)
	if err != nil {
		return nil, err
	}
	assign, err := loadbalancer.AssignWithLayout(cfg.Balancer, level.Layout, cfg.NumCGs)
	if err != nil {
		return nil, err
	}
	if err := checkCarryForward(prob.Tasks); err != nil {
		return nil, err
	}

	// Resolve the effective shard count: never more shards than ranks, and
	// crash-capable plans run serial — a CG crash tears the whole run down
	// at one instant, a zero-lookahead global channel no window can cover.
	nShards := cfg.Shards
	if nShards > cfg.NumCGs {
		nShards = cfg.NumCGs
	}
	if cfg.Faults != nil && (cfg.Faults.Crash > 0 || cfg.Faults.CrashAtStep > 0) {
		nShards = 1
	}

	engs := make([]*sim.Engine, cfg.NumCGs)
	var shards *sim.ShardSet
	var opt *sim.OptimisticShardSet
	var shardOf []int
	if nShards > 1 {
		if cfg.Optimistic {
			depth := cfg.OptMaxDepth
			if depth <= 0 {
				depth = 4
			}
			opt = sim.NewOptimisticLatencies(shardLatencies(params, cfg.NumCGs, nShards),
				sim.OptConfig{MaxDepth: depth})
			shards = opt.ShardSet
		} else {
			shards = sim.NewShardSetLatencies(shardLatencies(params, cfg.NumCGs, nShards))
		}
		shardOf = make([]int, cfg.NumCGs)
		for r := range engs {
			shardOf[r] = r * nShards / cfg.NumCGs
			engs[r] = shards.Engine(shardOf[r])
		}
	} else {
		eng := sim.NewEngine()
		for r := range engs {
			engs[r] = eng
		}
	}
	machine := sw26010.NewMachineWithEngines(engs, params)
	comm := mpisim.NewComm(engs[0], params, cfg.NumCGs)
	if shards != nil {
		comm.Shard(shards, engs)
	}

	// Attach the flight recorder before the schedulers are built: each CG,
	// the communicator and each rank's scheduler get their own per-rank
	// probe set, so every hook fires from that rank's engine events and the
	// sampled series stay bit-identical under sharding. An observed run
	// always records a trace (the overlap report needs the intervals).
	var sampler *obs.Sampler
	if cfg.Obs != nil {
		if cfg.Scheduler.Trace == nil {
			cfg.Scheduler.Trace = trace.New()
		}
		sampler = obs.NewSampler(*cfg.Obs, cfg.NumCGs)
		for i := 0; i < cfg.NumCGs; i++ {
			machine.CG(i).Probes = sampler.Rank(i)
		}
		comm.SetObs(sampler)
	}

	s := &Simulation{
		Cfg: cfg, Prob: prob, Level: level,
		Machine: machine, Comm: comm,
		eng: engs[0], engs: engs, shards: shards, opt: opt, shardOf: shardOf,
		assign:  assign,
		sampler: sampler,
	}
	if sampler != nil && shards != nil {
		// Window telemetry rides the same observability opt-in as the
		// sampler; the observer runs on the coordinator goroutine between
		// windows, so it races with nothing.
		s.specRec = obs.NewSpecRecorder(sampler.Options().MaxSamples)
		shards.SetWindowObserver(s.specRec.Observe)
	}
	// Attach the fault plane before the schedulers are built (they capture
	// their core group's injector at construction).
	s.inj = faults.NewInjector(cfg.Faults)
	if s.inj != nil {
		for i := 0; i < cfg.NumCGs; i++ {
			machine.CG(i).Faults = s.inj
		}
		comm.SetFaults(s.inj, cfg.Scheduler.Trace)
	}
	for r := 0; r < cfg.NumCGs; r++ {
		g, err := taskgraph.Compile(level, prob.Tasks, assign, r)
		if err != nil {
			return nil, err
		}
		sc := cfg.Scheduler
		sc.Probes = sampler.Rank(r)
		rk, err := scheduler.New(sc, g, machine.CG(r), comm.Rank(r))
		if err != nil {
			return nil, err
		}
		s.Ranks = append(s.Ranks, rk)
		if opt != nil {
			// Everything a rollback must rewind: the rank saver covers the
			// warehouse pair, scheduler counters and core-group state; the
			// MPI rank saver covers the traffic counters.
			opt.Register(shardOf[r], rk)
			opt.Register(shardOf[r], comm.Rank(r))
		}
	}
	if err := s.allocateInitial(); err != nil {
		return nil, err
	}
	return s, nil
}

// shardLatencies builds the per-shard-pair lookahead matrix for a
// contiguous partition of nCGs ranks into nShards: entry [sa][sb] is the
// minimum virtual latency of any zero-byte message from a rank in shard sa
// to a rank in shard sb. No interaction from sa — delivery, duplicate,
// collective completion — can take effect at sb sooner, which is what lets
// sb run that far past sa's clock alone. Pairs of shards whose ranks sit on
// distinct nodes keep the full link latency even when some other shard
// pair shares a node, so uneven partitions stop throttling everyone to the
// single global minimum.
func shardLatencies(params perf.Params, nCGs, nShards int) [][]sim.Time {
	lat := make([][]sim.Time, nShards)
	for i := range lat {
		lat[i] = make([]sim.Time, nShards)
		for j := range lat[i] {
			if i != j {
				lat[i][j] = sim.Infinity
			}
		}
	}
	for a := 0; a < nCGs; a++ {
		sa := a * nShards / nCGs
		for b := 0; b < nCGs; b++ {
			sb := b * nShards / nCGs
			if sa == sb {
				continue
			}
			if w := sim.Time(params.MessageTimeBetween(a, b, 0)); w < lat[sa][sb] {
				lat[sa][sb] = w
			}
		}
	}
	return lat
}

// now returns the current virtual time (the global maximum under
// sharding; segments start and end with every shard aligned).
func (s *Simulation) now() sim.Time {
	if s.shards != nil {
		return s.shards.Now()
	}
	return s.eng.Now()
}

// drive runs the engine(s) until the spawned work completes. Under
// sharding the shards' clocks are re-aligned afterwards so the next
// segment starts every rank at the same instant, as the serial engine
// does.
func (s *Simulation) drive() {
	if s.opt != nil {
		s.opt.Run()
		s.shards.AlignNow()
		return
	}
	if s.shards != nil {
		s.shards.Run()
		s.shards.AlignNow()
		return
	}
	s.eng.Run()
}

// OptStats returns the Time-Warp coordinator's counters, or false when
// the run is not optimistic. Degraded reports the conservative fallback
// (today always taken: the rank drivers are processes).
func (s *Simulation) OptStats() (sim.OptStats, bool) {
	if s.opt == nil {
		return sim.OptStats{}, false
	}
	return s.opt.Stats(), true
}

// stopFrom stops the run from inside p's executing event: p's own engine
// immediately, the sibling shards at the next window barrier.
func (s *Simulation) stopFrom(p *sim.Process) {
	p.Engine().Stop()
	if s.shards != nil {
		s.shards.RequestStop()
	}
}

// checkCarryForward enforces the supported warehouse discipline: every
// label a task requires from the old warehouse must be computed into the
// new warehouse each step, or it would vanish at the swap.
func checkCarryForward(tasks []*taskgraph.Task) error {
	computed := map[*taskgraph.Label]bool{}
	for _, t := range tasks {
		for _, d := range t.Computes {
			computed[d.Label] = true
		}
	}
	for _, t := range tasks {
		for _, d := range t.Requires {
			if d.DW == taskgraph.OldDW && !computed[d.Label] {
				return fmt.Errorf("core: task %q requires %q from the old warehouse but no task recomputes it (carry-forward is not supported)",
					t.Name, d.Label.Name())
			}
		}
	}
	return nil
}

// allocateInitial creates the t=0 old-warehouse variables on every rank
// and, in functional mode, fills their interiors from the problem's
// initial conditions. Allocation failures reproduce the paper's Table III
// memory errors.
func (s *Simulation) allocateInitial() error {
	// A label is needed on a patch only where some task requiring it from
	// the old warehouse actually runs — patch-filtered tasks (mixed
	// physics) keep foreign patches unallocated.
	needed := map[*taskgraph.Label][]*taskgraph.Task{}
	for _, t := range s.Prob.Tasks {
		for _, d := range t.Requires {
			if d.DW == taskgraph.OldDW {
				needed[d.Label] = append(needed[d.Label], t)
			}
		}
	}
	for _, rk := range s.Ranks {
		for _, l := range rk.Graph().Labels {
			requirers := needed[l]
			if len(requirers) == 0 {
				continue
			}
			for _, p := range rk.Graph().LocalPatches {
				applies := false
				for _, t := range requirers {
					if t.AppliesTo(p.ID) {
						applies = true
						break
					}
				}
				if !applies {
					continue
				}
				if err := rk.DWs.Old.Allocate(l, p, rk.MaxGhost(l)); err != nil {
					return err
				}
				if !s.Cfg.Scheduler.Functional {
					continue
				}
				init := s.Prob.Initial[l]
				if init == nil {
					return fmt.Errorf("core: no initial condition for label %q", l.Name())
				}
				f := rk.DWs.Old.Get(l, p)
				lv := s.Level
				f.FillFunc(p.Box, func(c grid.IVec) float64 {
					x, y, z := lv.CellCenter(c)
					return init(x, y, z)
				})
			}
		}
	}
	return nil
}

// Run executes nSteps further timesteps and returns the result for this
// segment. Each rank runs as its own simulated MPE process; ranks
// synchronise only through their MPI dependencies, exactly as on the
// machine. Run may be called repeatedly (interleaved with Rebalance or
// checkpointing); step numbering and simulated time carry across calls.
func (s *Simulation) Run(nSteps int) (*Result, error) {
	if nSteps <= 0 {
		return nil, fmt.Errorf("core: nSteps must be positive")
	}
	firstStep := s.stepsDone
	segmentStart := s.now()
	countersBefore := s.Machine.TotalCounters()
	var bytesBefore int64
	for r := range s.Ranks {
		bytesBefore += s.Comm.Rank(r).BytesSent
	}
	stepEnds := make([][]sim.Time, len(s.Ranks))
	var firstErr error
	var progDone atomic.Int64
	progTotal := int64(nSteps) * int64(len(s.Ranks))
	for r, rk := range s.Ranks {
		r, rk := r, rk
		stepEnds[r] = make([]sim.Time, nSteps)
		s.engs[r].Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Process) {
			t := s.timeDone
			// crashEv is an armed whole-CG crash of this rank: it fires a
			// plan-drawn fraction of a step duration into the crash step
			// and interrupts the entire engine (the failure takes the job
			// down, as on the machine). prevDur estimates the step length.
			// Crash-capable plans force serial execution (NewSimulation),
			// so p's engine is the engine here.
			var crashEv sim.EventHandle
			var prevDur sim.Time
			for i := 0; i < nSteps; i++ {
				if p.Engine().Stopped() {
					return
				}
				step := firstStep + i
				if s.crashStep > 0 && r == s.crashRank && step == s.crashStep-1 {
					s.crashStep = 0 // arm at most once
					crashStep := step
					delay := sim.Time(s.crashFrac) * prevDur
					crashEv = s.eng.Schedule(delay, func() {
						if s.crashed != nil {
							return
						}
						s.crashed = &CrashError{
							Rank: r, Step: crashStep + 1,
							At:      s.eng.Now(),
							Elapsed: s.eng.Now() - segmentStart,
						}
						if s.Cfg.Scheduler.Trace != nil {
							s.Cfg.Scheduler.Trace.Add(trace.Event{Rank: r, Step: crashStep,
								Kind: trace.KindFault, Name: "cg-crash",
								Start: s.eng.Now(), End: s.eng.Now()})
						}
						s.eng.Interrupt(s.crashed.Error())
					})
				}
				stepStart := p.Now()
				if err := rk.ExecuteStep(p, step, t, s.Prob.Dt); err != nil {
					s.runMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("rank %d step %d: %w", r, step, err)
					}
					s.runMu.Unlock()
					s.stopFrom(p)
					return
				}
				prevDur = p.Now() - stepStart
				stepEnds[r][i] = p.Now()
				if s.Cfg.Progress != nil {
					s.Cfg.Progress(ProgressUpdate{
						Rank: r, Step: step, Steps: nSteps,
						Done: progDone.Add(1), Total: progTotal,
						VirtualSeconds: float64(p.Now()),
					})
				}
				t += s.Prob.Dt
			}
			// The rank outran its armed crash: a CG that finished its work
			// cannot crash mid-step any more.
			crashEv.Cancel()
		})
	}
	s.drive()
	if s.crashed != nil {
		return nil, s.crashed
	}
	if firstErr != nil {
		return nil, firstErr
	}
	s.stepsDone += nSteps
	s.timeDone += float64(nSteps) * s.Prob.Dt

	res := &Result{Steps: nSteps}
	res.StepEnds = make([]sim.Time, nSteps)
	for step := 0; step < nSteps; step++ {
		for r := range s.Ranks {
			if stepEnds[r][step] > res.StepEnds[step] {
				res.StepEnds[step] = stepEnds[r][step]
			}
		}
	}
	res.WallTime = res.StepEnds[nSteps-1] - segmentStart
	res.PerStep = res.WallTime / sim.Time(nSteps)
	res.Counters = s.Machine.TotalCounters().Sub(countersBefore)
	flops := float64(res.Counters.Flops + res.Counters.MPEFlops)
	if res.WallTime > 0 {
		res.Gflops = flops / float64(res.WallTime) / 1e9
	}
	res.Efficiency = res.Gflops * 1e9 / s.Machine.PeakFlops()
	for r, rk := range s.Ranks {
		res.RankStats = append(res.RankStats, rk.Stats)
		res.BytesOnWire += s.Comm.Rank(r).BytesSent
		if pk := s.Machine.CG(r).PeakBytes(); pk > res.PeakMemoryBytes {
			res.PeakMemoryBytes = pk
		}
	}
	res.BytesOnWire -= bytesBefore
	res.Faults = s.faultReport()
	s.attachObs(res)
	s.attachRuntime(res)
	return res, nil
}

// attachObs folds the flight recorder into a result: the sampled series
// finalized at the current (globally aligned) virtual time, the trace
// overlap statistics, the roofline placement, and — when requested — the
// canonical event timeline. No-op without Config.Obs.
func (s *Simulation) attachObs(res *Result) {
	if s.sampler == nil || s.Cfg.Obs.HooksOnly {
		return
	}
	rep := s.sampler.Report(s.now())
	// One snapshot of the recorder feeds the whole report: the canonical
	// (sorted) timeline is what the trace export, the overlap statistics
	// and the critical path all walk, so they inherit the trace's
	// byte-identity across shard and worker settings.
	sorted := s.Cfg.Scheduler.Trace.Events()
	trace.SortEvents(sorted)
	rep.AddOverlap(sorted, s.Cfg.NumCGs)
	rep.AddRoofline(s.Machine.Params.CGRoofline(), res.Gflops, res.Efficiency)
	rep.AddCriticalPath(sorted, 5)
	res.Obs = rep
	if s.Cfg.Obs.Trace {
		res.Trace = sorted
	}
}

// attachRuntime folds execution-engine introspection into a result: the
// Time-Warp counters and the per-window telemetry stream. Both depend on
// the engine knobs (Shards, OptMaxDepth) and are therefore carried in
// JSON-excluded fields — see the Result field docs.
func (s *Simulation) attachRuntime(res *Result) {
	if s.opt != nil {
		st := s.opt.Stats()
		res.Opt = &st
	}
	if s.specRec != nil {
		res.Speculation = s.specRec.Report()
	}
}

// GatherField assembles the global field of a label from every rank's old
// warehouse (the state after the final swap). Functional mode only.
func (s *Simulation) GatherField(l *taskgraph.Label) (*field.Cell, error) {
	if !s.Cfg.Scheduler.Functional {
		return nil, fmt.Errorf("core: GatherField requires functional mode")
	}
	out := field.NewCell(s.Level.Layout.Domain)
	for _, rk := range s.Ranks {
		for _, p := range rk.Graph().LocalPatches {
			// Patch-filtered tasks (mixed physics) leave the label
			// unallocated on foreign patches; those cells stay zero.
			if !rk.DWs.Old.Exists(l, p) {
				continue
			}
			f := rk.DWs.Old.Get(l, p)
			out.CopyRegion(f, p.Box)
		}
	}
	return out, nil
}

// Assignment returns the patch-to-rank mapping in use.
func (s *Simulation) Assignment() []int { return s.assign }
