package core

import (
	"fmt"
	"io"

	"encoding/gob"

	"sunuintah/internal/grid"
	"sunuintah/internal/taskgraph"
)

// MemCheckpoint is a simulation's persistent state held in memory: the
// step counter, simulated time level, and every old-warehouse variable's
// interior values (ghosts are rebuilt each step). It is the incremental
// sibling of the on-disk checkpoint — RunResilient restarts from it
// without ever serialising, and WriteCheckpoint/RestoreCheckpoint are
// thin gob wrappers around the same structure (the Uintah analogue is
// the UDA data archive).
//
// The exported fields exist for gob; treat the value as opaque.
type MemCheckpoint struct {
	Cells       grid.IVec
	PatchCounts grid.IVec
	StepsDone   int
	TimeDone    float64
	Labels      []string
	// Data[l][p] holds label l's interior values on patch p, in
	// grid-box ForEach order.
	Data [][][]float64
}

// persistentLabels returns the labels that carry state between steps, in
// deterministic order, erroring on duplicate names (the checkpoint format
// identifies labels by name).
func (s *Simulation) persistentLabels() ([]*taskgraph.Label, error) {
	var labels []*taskgraph.Label
	seenPtr := map[*taskgraph.Label]bool{}
	seenName := map[string]bool{}
	for _, t := range s.Prob.Tasks {
		for _, d := range t.Requires {
			if d.DW != taskgraph.OldDW || seenPtr[d.Label] {
				continue
			}
			if seenName[d.Label.Name()] {
				return nil, fmt.Errorf("core: duplicate label name %q in checkpointed state", d.Label.Name())
			}
			seenPtr[d.Label] = true
			seenName[d.Label.Name()] = true
			labels = append(labels, d.Label)
		}
	}
	return labels, nil
}

// Checkpoint captures the simulation's persistent state in memory.
// Functional mode only (a timing-only run has no field data to preserve).
func (s *Simulation) Checkpoint() (*MemCheckpoint, error) {
	if !s.Cfg.Scheduler.Functional {
		return nil, fmt.Errorf("core: checkpointing requires functional mode")
	}
	labels, err := s.persistentLabels()
	if err != nil {
		return nil, err
	}
	f := &MemCheckpoint{
		Cells:       s.Cfg.Cells,
		PatchCounts: s.Cfg.PatchCounts,
		StepsDone:   s.stepsDone,
		TimeDone:    s.timeDone,
	}
	layout := s.Level.Layout
	for _, l := range labels {
		f.Labels = append(f.Labels, l.Name())
		perPatch := make([][]float64, layout.NumPatches())
		for _, rk := range s.Ranks {
			for _, p := range rk.Graph().LocalPatches {
				// Patch-filtered tasks leave the label unallocated on
				// foreign patches; their slots stay nil in the checkpoint.
				if !rk.DWs.Old.Exists(l, p) {
					continue
				}
				perPatch[p.ID] = rk.DWs.Old.Get(l, p).Pack(p.Box, nil)
			}
		}
		f.Data = append(f.Data, perPatch)
	}
	return f, nil
}

// RestoreFromMemory loads state captured by Checkpoint into this
// simulation, which must have the same grid, patch layout and label set
// (the rank count and scheduler variant may differ). The simulation must
// not have run yet; after restoring, Run continues from the checkpointed
// step.
func (s *Simulation) RestoreFromMemory(f *MemCheckpoint) error {
	if !s.Cfg.Scheduler.Functional {
		return fmt.Errorf("core: checkpointing requires functional mode")
	}
	if s.stepsDone != 0 {
		return fmt.Errorf("core: restore into a freshly constructed simulation (already ran %d steps)", s.stepsDone)
	}
	if f.Cells != s.Cfg.Cells || f.PatchCounts != s.Cfg.PatchCounts {
		return fmt.Errorf("core: checkpoint grid %v/%v does not match simulation %v/%v",
			f.Cells, f.PatchCounts, s.Cfg.Cells, s.Cfg.PatchCounts)
	}
	labels, err := s.persistentLabels()
	if err != nil {
		return err
	}
	byName := map[string]*taskgraph.Label{}
	for _, l := range labels {
		byName[l.Name()] = l
	}
	if len(f.Labels) != len(labels) {
		return fmt.Errorf("core: checkpoint has %d labels, simulation has %d", len(f.Labels), len(labels))
	}
	for li, name := range f.Labels {
		l, ok := byName[name]
		if !ok {
			return fmt.Errorf("core: checkpoint label %q not in this problem", name)
		}
		for _, rk := range s.Ranks {
			for _, p := range rk.Graph().LocalPatches {
				data := f.Data[li][p.ID]
				if len(data) == 0 && !rk.DWs.Old.Exists(l, p) {
					continue // foreign-physics patch: nothing saved, nothing allocated
				}
				if int64(len(data)) != p.NumCells() {
					return fmt.Errorf("core: checkpoint patch %d has %d values, want %d",
						p.ID, len(data), p.NumCells())
				}
				rest := rk.DWs.Old.Get(l, p).Unpack(p.Box, data)
				if len(rest) != 0 {
					return fmt.Errorf("core: checkpoint patch %d unpack mismatch", p.ID)
				}
			}
		}
	}
	s.stepsDone = f.StepsDone
	s.timeDone = f.TimeDone
	return nil
}

// WriteCheckpoint serialises the simulation's state (gob-encoded
// Checkpoint). Functional mode only.
func (s *Simulation) WriteCheckpoint(w io.Writer) error {
	f, err := s.Checkpoint()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(f)
}

// RestoreCheckpoint loads state written by WriteCheckpoint (gob-decoded
// RestoreFromMemory); see RestoreFromMemory for the matching rules.
func (s *Simulation) RestoreCheckpoint(r io.Reader) error {
	if !s.Cfg.Scheduler.Functional {
		return fmt.Errorf("core: checkpointing requires functional mode")
	}
	var f MemCheckpoint
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("core: reading checkpoint: %w", err)
	}
	return s.RestoreFromMemory(&f)
}
