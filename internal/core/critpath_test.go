package core

import (
	"bytes"
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"sunuintah/internal/grid"
	"sunuintah/internal/obs"
	"sunuintah/internal/scheduler"
)

// TestShardsCriticalPathIdentity is the tentpole determinism gate for the
// critical-path analysis: the folded-in chain report (and the whole
// Result JSON carrying it) must be byte-identical across host workers,
// shard counts and optimistic speculation depth. The chain is derived
// from the canonicalised trace, so any engine-dependent ordering leaking
// into it shows up here as a byte diff.
func TestShardsCriticalPathIdentity(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	const nSteps = 3

	run := func(workers, shards, depth int) ([]byte, []byte, *obs.Report) {
		t.Helper()
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		cfg := Config{
			Cells:       cells,
			PatchCounts: patches,
			NumCGs:      8,
			Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, TileSize: grid.IV(8, 8, 4)},
			Shards:      shards,
			Optimistic:  depth > 0,
			OptMaxDepth: depth,
			Obs:         &obs.Options{Trace: true},
		}
		prob, _ := burgersProblem(cells, patches, false)
		s, err := NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(nSteps)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		var table bytes.Buffer
		res.Obs.WriteCriticalPath(&table)
		return blob, table.Bytes(), res.Obs
	}

	refJSON, refTable, refObs := run(4, 0, 0)
	if refObs == nil || refObs.CritPath == nil {
		t.Fatal("reference run has no critical-path report")
	}
	cp := refObs.CritPath
	if cp.MakespanSeconds <= 0 {
		t.Fatalf("non-positive makespan: %v", cp.MakespanSeconds)
	}
	total, shares := 0.0, 0.0
	for _, c := range cp.Categories {
		total += c.Seconds
		shares += c.Share
	}
	if math.Abs(total-cp.MakespanSeconds) > 1e-9*cp.MakespanSeconds {
		t.Fatalf("category seconds %v != makespan %v", total, cp.MakespanSeconds)
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", shares)
	}

	for _, workers := range []int{1, 4} {
		for _, shards := range []int{0, 2, 4} {
			for _, depth := range []int{0, 4} {
				gotJSON, gotTable, _ := run(workers, shards, depth)
				if !bytes.Equal(gotJSON, refJSON) {
					t.Fatalf("workers=%d shards=%d depth=%d: Result JSON differs\nref: %s\ngot: %s",
						workers, shards, depth, refJSON, gotJSON)
				}
				if !bytes.Equal(gotTable, refTable) {
					t.Fatalf("workers=%d shards=%d depth=%d: critical-path table differs\nref:\n%s\ngot:\n%s",
						workers, shards, depth, refTable, gotTable)
				}
			}
		}
	}
}
