package core

import (
	"fmt"

	"sunuintah/internal/loadbalancer"
	"sunuintah/internal/mpisim"
	"sunuintah/internal/sim"
	"sunuintah/internal/taskgraph"
)

// Rebalance redistributes patches according to newAssign between Run
// segments: every migrating patch's old-warehouse variables travel over
// the simulated MPI to their new owner (costed in virtual time like any
// other communication), the per-rank task graphs are recompiled, and the
// next Run continues from the same step count. This is the "load
// balancing ... as appropriate, then continue to next timestep" step of
// the paper's scheduler (Section V-C step 4).
func (s *Simulation) Rebalance(newAssign []int) error {
	layout := s.Level.Layout
	if len(newAssign) != layout.NumPatches() {
		return fmt.Errorf("core: assignment covers %d patches, layout has %d",
			len(newAssign), layout.NumPatches())
	}
	for p, r := range newAssign {
		if r < 0 || r >= len(s.Ranks) {
			return fmt.Errorf("core: patch %d assigned to invalid rank %d", p, r)
		}
	}

	// The labels that live across steps are exactly those required from
	// the old warehouse (allocateInitial's set).
	var labels []*taskgraph.Label
	needed := map[*taskgraph.Label]bool{}
	for _, t := range s.Prob.Tasks {
		for _, d := range t.Requires {
			if d.DW == taskgraph.OldDW && !needed[d.Label] {
				needed[d.Label] = true
				labels = append(labels, d.Label)
			}
		}
	}

	type move struct {
		patchID  int
		labelIdx int
		from, to int
	}
	var moves []move
	for p, newOwner := range newAssign {
		if oldOwner := s.assign[p]; oldOwner != newOwner {
			for li := range labels {
				moves = append(moves, move{p, li, s.assign[p], newOwner})
			}
		}
	}

	// Execute the migration in virtual time: one process per rank posts
	// its receives, packs and sends its outgoing patches, then unpacks.
	// Migration tags live in the negative tag space so they can never
	// collide with timestep ghost tags.
	tagOf := func(m move) int { return -(1 + m.patchID*len(labels) + m.labelIdx) }
	var firstErr error
	fail := func(p *sim.Process, err error) {
		s.runMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		s.runMu.Unlock()
		s.stopFrom(p)
	}
	for r, rk := range s.Ranks {
		r, rk := r, rk
		s.engs[r].Spawn(fmt.Sprintf("migrate%d", r), func(p *sim.Process) {
			params := rk.CoreGroup().Params
			type pendingIn struct {
				m   move
				req *mpisim.Request
			}
			var incoming []pendingIn
			for _, m := range moves {
				if m.to != r {
					continue
				}
				req := s.Comm.Rank(r).Irecv(p, m.from, tagOf(m))
				incoming = append(incoming, pendingIn{m, req})
			}
			for _, m := range moves {
				if m.from != r {
					continue
				}
				patch := layout.Patch(m.patchID)
				label := labels[m.labelIdx]
				bytes := patch.NumCells() * 8
				var payload []float64
				if s.Cfg.Scheduler.Functional {
					payload = rk.DWs.Old.Get(label, patch).Pack(patch.Box, nil)
				}
				p.Sleep(sim.Time(params.LocalCopyTime(bytes)))
				s.Comm.Rank(r).Isend(p, m.to, tagOf(m), payload, bytes)
			}
			for _, in := range incoming {
				s.Comm.Rank(r).Wait(p, in.req)
				patch := layout.Patch(in.m.patchID)
				label := labels[in.m.labelIdx]
				if err := rk.DWs.Old.Allocate(label, patch, rk.MaxGhost(label)); err != nil {
					fail(p, fmt.Errorf("core: migrating patch %d to rank %d: %w", in.m.patchID, r, err))
					return
				}
				bytes := patch.NumCells() * 8
				p.Sleep(sim.Time(params.TouchTime(bytes) + params.LocalCopyTime(bytes)))
				if s.Cfg.Scheduler.Functional {
					rest := rk.DWs.Old.Get(label, patch).Unpack(patch.Box, in.req.Payload())
					if len(rest) != 0 {
						fail(p, fmt.Errorf("core: migration payload mismatch for patch %d", in.m.patchID))
						return
					}
				}
			}
			// Free the variables this rank shipped away.
			for _, m := range moves {
				if m.from == r {
					rk.DWs.Old.Free(labels[m.labelIdx], layout.Patch(m.patchID))
				}
			}
		})
	}
	s.drive()
	if firstErr != nil {
		return firstErr
	}

	// Recompile every rank's portion of the task graph.
	for r, rk := range s.Ranks {
		g, err := taskgraph.Compile(s.Level, s.Prob.Tasks, newAssign, r)
		if err != nil {
			return err
		}
		if err := rk.SetGraph(g); err != nil {
			return err
		}
	}
	s.assign = append(s.assign[:0], newAssign...)
	return nil
}

// MeasuredPatchCosts gathers every patch's accumulated kernel time from
// the owning rank's scheduler, in patch-ID order. Patches never offloaded
// yet report zero.
func (s *Simulation) MeasuredPatchCosts() []float64 {
	out := make([]float64, s.Level.Layout.NumPatches())
	for _, rk := range s.Ranks {
		for id, c := range rk.PatchCosts() {
			out[id] += float64(c)
		}
	}
	return out
}

// AutoRebalance redistributes patches using the measured per-patch kernel
// costs (the Uintah measurement-based load-balancing policy): contiguous
// patch-ID segments with approximately equal cost sums. It errors if no
// costs have been measured yet. Measurements reset afterwards so the next
// interval is judged on its own.
func (s *Simulation) AutoRebalance() ([]int, error) {
	costs := s.MeasuredPatchCosts()
	var total float64
	for _, c := range costs {
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("core: no measured patch costs yet; run at least one step first")
	}
	assign, err := loadbalancer.AssignWeighted(costs, len(s.Ranks))
	if err != nil {
		return nil, err
	}
	if err := s.Rebalance(assign); err != nil {
		return nil, err
	}
	for _, rk := range s.Ranks {
		rk.ResetPatchCosts()
	}
	return assign, nil
}
