package core

import (
	"errors"
	"fmt"

	"sunuintah/internal/faults"
	"sunuintah/internal/sim"
	"sunuintah/internal/sw26010"
)

// CrashError reports a simulated whole-core-group failure: the engine was
// interrupted mid-run, and the simulation (parked process goroutines
// included) is dead. Recover by rebuilding and restoring a checkpoint —
// which is exactly what RunResilient does.
type CrashError struct {
	Rank int      // the core group that died
	Step int      // 1-based step during which it died
	At   sim.Time // absolute virtual time of the crash
	// Elapsed is the virtual time this run segment had consumed when the
	// crash hit — the work lost since the last checkpoint.
	Elapsed sim.Time
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("core: CG %d crashed during step %d (t=%.6fs, %.6fs of work lost)",
		e.Rank, e.Step, float64(e.At), float64(e.Elapsed))
}

// RecoveryStats summarises a resilient run's checkpoint/restart activity.
type RecoveryStats struct {
	Crashes     int // injected CG crashes that tore a run segment down
	Restarts    int // successful restarts from a checkpoint
	Checkpoints int // checkpoints taken
	// Overheads are included in the run's WallTime.
	CheckpointOverhead sim.Time // virtual time spent writing checkpoints
	RestartOverhead    sim.Time // virtual time spent rebuilding after crashes
	LostWork           sim.Time // virtual time of work redone after crashes
	// Recovered is false when the run exhausted MaxRestarts and gave up
	// (the Result then covers only the completed steps).
	Recovered bool
}

// FaultReport aggregates everything the fault plane injected into a run
// and everything the runtime did to survive it.
type FaultReport struct {
	// Injected counts the faults drawn by the injector.
	Injected faults.Counts
	// Interconnect recovery (summed over ranks).
	Resends       int64
	DupsDiscarded int64
	// Scheduler recovery (summed over ranks).
	OffloadTimeouts int64
	Reoffloads      int64
	MPEFallbacks    int64
	UnhealthyGangs  int64
	// Recovery covers checkpoint/restart; nil outside RunResilient.
	Recovery *RecoveryStats `json:"Recovery,omitempty"`
}

// add accumulates another report's injection and recovery counters
// (Recovery is managed by the caller).
func (f *FaultReport) add(other *FaultReport) {
	if other == nil {
		return
	}
	f.Injected.Add(other.Injected)
	f.Resends += other.Resends
	f.DupsDiscarded += other.DupsDiscarded
	f.OffloadTimeouts += other.OffloadTimeouts
	f.Reoffloads += other.Reoffloads
	f.MPEFallbacks += other.MPEFallbacks
	f.UnhealthyGangs += other.UnhealthyGangs
}

// faultReport snapshots the simulation's cumulative fault activity, or nil
// without an injector (keeping fault-free results byte-identical).
func (s *Simulation) faultReport() *FaultReport {
	if s.inj == nil {
		return nil
	}
	fr := &FaultReport{Injected: s.inj.Counts}
	for r, rk := range s.Ranks {
		mr := s.Comm.Rank(r)
		fr.Resends += mr.Resends
		fr.DupsDiscarded += mr.DupsDiscarded
		if fs := rk.Stats.Faults; fs != nil {
			fr.OffloadTimeouts += fs.OffloadTimeouts
			fr.Reoffloads += fs.Reoffloads
			fr.MPEFallbacks += fs.MPEFallbacks
			fr.UnhealthyGangs += fs.UnhealthyGangs
		}
	}
	return fr
}

// armCrash schedules a whole-CG crash: rank dies during 1-based step step1,
// frac of a step duration in. The next Run segment containing that step
// fires it.
func (s *Simulation) armCrash(rank, step1 int, frac float64) {
	s.crashRank = rank
	s.crashStep = step1
	s.crashFrac = frac
}

// armCrashFromPlan draws this incarnation's crash point from the plan.
// An explicit CrashAtStep fires only in incarnation 0 (the restarted run
// resumes before the crash step, and deterministically re-crashing forever
// would make recovery impossible — on the machine the restarted job runs on
// a fresh node). Rate-drawn crashes re-draw per incarnation with the
// incarnation-derived stream, skipping draws that land on already-completed
// steps; repeated crashes stay possible, which is the recovered-versus-lost
// signal the chaos artifact measures.
func (s *Simulation) armCrashFromPlan(nSteps, incarnation int) {
	if s.inj == nil {
		return
	}
	plan := s.inj.Plan()
	if plan.CrashAtStep > 0 {
		if incarnation == 0 {
			rank, step, frac, ok := s.inj.CrashPoint(nSteps, s.Cfg.NumCGs)
			if ok {
				s.armCrash(rank, step, frac)
			}
		}
		return
	}
	rank, step, frac, ok := s.inj.CrashPoint(nSteps, s.Cfg.NumCGs)
	if ok && step > s.stepsDone {
		s.armCrash(rank, step, frac)
	}
}

// fastForward restores a timing-only simulation's progress markers (the
// timing-only analogue of RestoreCheckpoint: there is no field data to
// reload, only the step counter and time level).
func (s *Simulation) fastForward(steps int, time float64) {
	s.stepsDone = steps
	s.timeDone = time
}

// incarnationStride separates the fault streams of successive restart
// incarnations (the restarted job runs on fresh hardware and draws a fresh
// fault history).
const incarnationStride = 0x9e3779b9

// RunResilient executes nSteps of the problem under the configuration's
// fault plan with checkpoint/restart: progress is checkpointed every
// Plan.CheckpointEvery steps, an injected CG crash tears the simulation
// down (CrashError), and the run rebuilds from the last checkpoint — in
// functional mode through the DataWarehouse checkpoint archive, in
// timing-only mode by fast-forwarding the progress markers — until the run
// completes or Plan.MaxRestarts is exhausted. The returned Result covers
// the whole run; WallTime includes checkpoint, restart, and lost-work
// overhead, and Result.Faults.Recovery tells the recovery story.
//
// With a nil or zero fault plan this is exactly NewSimulation + Run.
func RunResilient(cfg Config, prob Problem, nSteps int) (*Result, error) {
	res, _, err := runResilient(cfg, prob, nSteps)
	return res, err
}

// runResilient additionally returns the final incarnation's simulation,
// for callers (tests) that inspect warehouse state after recovery.
func runResilient(cfg Config, prob Problem, nSteps int) (*Result, *Simulation, error) {
	if cfg.Faults.Zero() {
		s, err := NewSimulation(cfg, prob)
		if err != nil {
			return nil, nil, err
		}
		res, err := s.Run(nSteps)
		return res, s, err
	}
	if nSteps <= 0 {
		return nil, nil, fmt.Errorf("core: nSteps must be positive")
	}
	plan := cfg.Faults.Normalized()

	// build constructs incarnation inc resumed at the given progress (ckpt
	// is the in-memory checkpoint; nil before the first one).
	build := func(inc, stepsDone int, timeDone float64, ckpt *MemCheckpoint) (*Simulation, error) {
		c := cfg
		fp := plan
		fp.Seed = plan.Seed + uint64(inc)*incarnationStride
		c.Faults = &fp
		s, err := NewSimulation(c, prob)
		if err != nil {
			return nil, err
		}
		if stepsDone > 0 {
			if cfg.Scheduler.Functional {
				if err := s.RestoreFromMemory(ckpt); err != nil {
					return nil, err
				}
			} else {
				s.fastForward(stepsDone, timeDone)
			}
		}
		s.armCrashFromPlan(nSteps, inc)
		return s, nil
	}

	rec := &RecoveryStats{Recovered: true}
	merged := &FaultReport{Recovery: rec}
	var (
		wall        sim.Time
		stepEnds    []sim.Time
		counters    sw26010.Counters
		bytesOnWire int64
		peakMem     int64
	)
	stepsDone := 0
	timeDone := 0.0
	restarts := 0
	inc := 0
	var ckpt *MemCheckpoint

	s, err := build(inc, stepsDone, timeDone, ckpt)
	if err != nil {
		return nil, nil, err
	}

	for stepsDone < nSteps {
		seg := plan.CheckpointEvery
		if remaining := nSteps - stepsDone; seg > remaining {
			seg = remaining
		}
		res, err := s.Run(seg)
		var ce *CrashError
		if errors.As(err, &ce) {
			rec.Crashes++
			rec.LostWork += ce.Elapsed
			wall += ce.Elapsed
			merged.add(s.faultReport()) // the dead incarnation's tally
			if restarts >= plan.MaxRestarts {
				rec.Recovered = false
				break
			}
			restarts++
			rec.Restarts++
			rec.RestartOverhead += sim.Time(plan.RestartCost)
			wall += sim.Time(plan.RestartCost)
			inc++
			s, err = build(inc, stepsDone, timeDone, ckpt)
			if err != nil {
				return nil, nil, err
			}
			continue
		}
		if err != nil {
			return nil, nil, err
		}
		// Successful segment: fold it into the run-level result. Segment
		// step ends are engine-absolute; re-base them onto the accumulated
		// wall clock.
		segStart := res.StepEnds[len(res.StepEnds)-1] - res.WallTime
		for _, e := range res.StepEnds {
			stepEnds = append(stepEnds, wall+(e-segStart))
		}
		wall += res.WallTime
		counters.Add(res.Counters)
		bytesOnWire += res.BytesOnWire
		if res.PeakMemoryBytes > peakMem {
			peakMem = res.PeakMemoryBytes
		}
		stepsDone += seg
		timeDone += float64(seg) * prob.Dt
		if stepsDone < nSteps {
			if cfg.Scheduler.Functional {
				c, err := s.Checkpoint()
				if err != nil {
					return nil, nil, err
				}
				ckpt = c
			}
			rec.Checkpoints++
			rec.CheckpointOverhead += sim.Time(plan.CheckpointCost)
			wall += sim.Time(plan.CheckpointCost)
		}
	}

	merged.add(s.faultReport()) // the surviving incarnation's tally

	out := &Result{Steps: stepsDone, WallTime: wall, StepEnds: stepEnds,
		Counters: counters, BytesOnWire: bytesOnWire, PeakMemoryBytes: peakMem,
		Faults: merged}
	if stepsDone > 0 {
		out.PerStep = wall / sim.Time(stepsDone)
	}
	flops := float64(counters.Flops + counters.MPEFlops)
	if wall > 0 {
		out.Gflops = flops / float64(wall) / 1e9
	}
	out.Efficiency = out.Gflops * 1e9 / s.Machine.PeakFlops()
	for _, rk := range s.Ranks {
		out.RankStats = append(out.RankStats, rk.Stats)
	}
	// The surviving incarnation's flight recorder covers every step that
	// made it into the folded result (crashed segments' work was redone).
	s.attachObs(out)
	s.attachRuntime(out)
	return out, s, nil
}
