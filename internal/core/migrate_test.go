package core

import (
	"bytes"
	"testing"

	"sunuintah/internal/burgers"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/loadbalancer"
	"sunuintah/internal/scheduler"
)

func TestRunSegmentsEqualSingleRun(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	lv, _ := grid.NewUnitCubeLevel(cells, patches)
	prob, u := burgersProblem(cells, patches, false)
	ref := burgers.SerialSolve(lv, 6, prob.Dt, burgers.FastExpLib)

	cfg := functionalCfg(cells, patches, 4, scheduler.ModeAsync, false)
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(4); err != nil {
		t.Fatal(err)
	}
	got, err := s.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	if d := field.MaxAbsDiff(got, ref, lv.Layout.Domain); d > 1e-13 {
		t.Fatalf("segmented run differs from reference by %g", d)
	}
}

func TestRebalancePreservesSolution(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	lv, _ := grid.NewUnitCubeLevel(cells, patches)
	prob, u := burgersProblem(cells, patches, false)
	ref := burgers.SerialSolve(lv, 6, prob.Dt, burgers.FastExpLib)

	cfg := functionalCfg(cells, patches, 4, scheduler.ModeAsync, false)
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	// Shift every patch to a different rank (round-robin instead of
	// block): all eight patches migrate somewhere new or stay per the
	// cyclic deal.
	newAssign, err := loadbalancer.Assign(loadbalancer.RoundRobin, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rebalance(newAssign); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for p, r := range s.Assignment() {
		if r != newAssign[p] {
			t.Fatalf("assignment not installed at patch %d", p)
		}
		moved++
	}
	if _, err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	got, err := s.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	if d := field.MaxAbsDiff(got, ref, lv.Layout.Domain); d > 1e-13 {
		t.Fatalf("rebalanced run differs from reference by %g", d)
	}
}

func TestRebalanceChargesVirtualTime(t *testing.T) {
	cells := grid.IV(32, 32, 32)
	patches := grid.IV(2, 2, 2)
	prob, _ := burgersProblem(cells, patches, false)
	cfg := functionalCfg(cells, patches, 2, scheduler.ModeAsync, false)
	cfg.Scheduler.Functional = false
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	before := s.Machine.Engine().Now()
	newAssign := []int{1, 0, 1, 0, 1, 0, 1, 0} // everything moves
	if err := s.Rebalance(newAssign); err != nil {
		t.Fatal(err)
	}
	if s.Machine.Engine().Now() <= before {
		t.Fatal("migration consumed no virtual time")
	}
}

func TestRebalanceValidation(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	prob, _ := burgersProblem(cells, grid.IV(2, 2, 2), false)
	cfg := functionalCfg(cells, grid.IV(2, 2, 2), 2, scheduler.ModeAsync, false)
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rebalance([]int{0}); err == nil {
		t.Error("short assignment should fail")
	}
	if err := s.Rebalance([]int{0, 0, 0, 0, 0, 0, 0, 9}); err == nil {
		t.Error("out-of-range rank should fail")
	}
}

func TestCheckpointRestartMatchesUninterruptedRun(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	patches := grid.IV(2, 2, 2)
	lv, _ := grid.NewUnitCubeLevel(cells, patches)
	prob, u := burgersProblem(cells, patches, false)
	ref := burgers.SerialSolve(lv, 6, prob.Dt, burgers.FastExpLib)

	// Run 3 steps, checkpoint.
	cfg := functionalCfg(cells, patches, 4, scheduler.ModeAsync, false)
	s1, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a DIFFERENT configuration: 2 ranks, synchronous
	// scheduler — the checkpoint is layout-portable.
	prob2, u2 := burgersProblem(cells, patches, false)
	_ = u2
	cfg2 := functionalCfg(cells, patches, 2, scheduler.ModeSync, false)
	// Reuse the same label so GatherField works: rebuild problem with u.
	prob2.Tasks = prob.Tasks
	prob2.Initial = prob.Initial
	s2, err := NewSimulation(cfg2, prob2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.RestoreCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(3); err != nil {
		t.Fatal(err)
	}
	got, err := s2.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	if d := field.MaxAbsDiff(got, ref, lv.Layout.Domain); d > 1e-13 {
		t.Fatalf("restarted run differs from reference by %g", d)
	}
}

func TestCheckpointValidation(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	prob, _ := burgersProblem(cells, grid.IV(2, 2, 2), false)

	// Timing-only simulations cannot checkpoint.
	cfgT := functionalCfg(cells, grid.IV(2, 2, 2), 2, scheduler.ModeAsync, false)
	cfgT.Scheduler.Functional = false
	sT, err := NewSimulation(cfgT, prob)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sT.WriteCheckpoint(&buf); err == nil {
		t.Error("timing-only checkpoint should fail")
	}

	// Mismatched grids are rejected.
	cfgA := functionalCfg(cells, grid.IV(2, 2, 2), 2, scheduler.ModeAsync, false)
	sA, _ := NewSimulation(cfgA, prob)
	buf.Reset()
	if err := sA.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	probB, _ := burgersProblem(grid.IV(32, 32, 32), grid.IV(2, 2, 2), false)
	cfgB := functionalCfg(grid.IV(32, 32, 32), grid.IV(2, 2, 2), 2, scheduler.ModeAsync, false)
	sB, err := NewSimulation(cfgB, probB)
	if err != nil {
		t.Fatal(err)
	}
	if err := sB.RestoreCheckpoint(&buf); err == nil {
		t.Error("grid mismatch should fail")
	}

	// Restore into an already-run simulation is rejected.
	cfgC := functionalCfg(cells, grid.IV(2, 2, 2), 2, scheduler.ModeAsync, false)
	probC, _ := burgersProblem(cells, grid.IV(2, 2, 2), false)
	probC.Tasks = prob.Tasks
	probC.Initial = prob.Initial
	sC, _ := NewSimulation(cfgC, probC)
	if _, err := sC.Run(1); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := sA.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := sC.RestoreCheckpoint(&buf); err == nil {
		t.Error("restore after running should fail")
	}
}

func TestRegridPreservesSolution(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	lv, _ := grid.NewUnitCubeLevel(cells, grid.IV(2, 2, 2))
	prob, u := burgersProblem(cells, grid.IV(2, 2, 2), false)
	ref := burgers.SerialSolve(lv, 6, prob.Dt, burgers.FastExpLib)

	cfg := functionalCfg(cells, grid.IV(2, 2, 2), 4, scheduler.ModeAsync, false)
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	// Re-partition the same grid: 8 patches of 8x8x8 become 16 patches of
	// 8x8x4 owned under a fresh block assignment.
	before := s.Machine.Engine().Now()
	if err := s.Regrid(grid.IV(2, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Machine.Engine().Now() <= before {
		t.Fatal("regridding consumed no virtual time")
	}
	if s.Level.Layout.NumPatches() != 16 {
		t.Fatalf("patches after regrid = %d", s.Level.Layout.NumPatches())
	}
	if _, err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	got, err := s.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	if d := field.MaxAbsDiff(got, ref, lv.Layout.Domain); d > 1e-13 {
		t.Fatalf("regridded run differs from reference by %g", d)
	}
}

func TestRegridToCoarserLayout(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	lv, _ := grid.NewUnitCubeLevel(cells, grid.IV(2, 2, 4))
	prob, u := burgersProblem(cells, grid.IV(2, 2, 4), false)
	ref := burgers.SerialSolve(lv, 4, prob.Dt, burgers.FastExpLib)

	cfg := functionalCfg(cells, grid.IV(2, 2, 4), 2, scheduler.ModeSync, false)
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Regrid(grid.IV(1, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	got, err := s.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	if d := field.MaxAbsDiff(got, ref, lv.Layout.Domain); d > 1e-13 {
		t.Fatalf("coarsened run differs from reference by %g", d)
	}
}

func TestRegridRejectsBadLayout(t *testing.T) {
	cells := grid.IV(16, 16, 16)
	prob, _ := burgersProblem(cells, grid.IV(2, 2, 2), false)
	cfg := functionalCfg(cells, grid.IV(2, 2, 2), 2, scheduler.ModeAsync, false)
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Regrid(grid.IV(3, 2, 2)); err == nil {
		t.Fatal("indivisible layout should be rejected")
	}
	if err := s.Regrid(grid.IV(1, 1, 1)); err == nil {
		t.Fatal("fewer patches than ranks should be rejected")
	}
}

func TestAutoRebalanceFixesSkewedAssignment(t *testing.T) {
	cells := grid.IV(16, 16, 32)
	patches := grid.IV(2, 2, 4) // 16 patches
	prob, _ := burgersProblem(cells, patches, false)
	cfg := functionalCfg(cells, patches, 4, scheduler.ModeAsync, false)
	cfg.Scheduler.Functional = false
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AutoRebalance(); err == nil {
		t.Fatal("auto-rebalance before any step should fail")
	}
	// Deliberately skew the load: rank 0 gets 13 patches, others one each.
	skew := make([]int, 16)
	skew[13], skew[14], skew[15] = 1, 2, 3
	if err := s.Rebalance(skew); err != nil {
		t.Fatal(err)
	}
	resSkew, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := s.AutoRebalance()
	if err != nil {
		t.Fatal(err)
	}
	counts := loadbalancer.Counts(assign, 4)
	for r, c := range counts {
		if c != 4 {
			t.Fatalf("rank %d has %d patches after auto-rebalance (uniform costs should even out): %v", r, c, counts)
		}
	}
	resBalanced, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if resBalanced.PerStep >= resSkew.PerStep {
		t.Fatalf("balanced run (%v) not faster than skewed (%v)", resBalanced.PerStep, resSkew.PerStep)
	}
}
