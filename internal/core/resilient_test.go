package core

import (
	"encoding/json"
	"strings"
	"testing"

	"sunuintah/internal/faults"
	"sunuintah/internal/field"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
)

// A forced mid-run CG crash must recover through checkpoint/restart and
// land on exactly the same fields as an uninterrupted run.
func TestResilientCrashRestartMatchesHealthyRun(t *testing.T) {
	cells, patches := grid.IV(16, 16, 16), grid.IV(2, 2, 1)
	const nSteps = 6
	prob, u := burgersProblem(cells, patches, false)
	cfg := functionalCfg(cells, patches, 2, scheduler.ModeAsync, false)
	ref, _ := runAndGather(t, cfg, prob, u, nSteps)

	cfg.Faults = &faults.Plan{Seed: 1, CrashAtStep: 4, CrashRank: 1, CheckpointEvery: 2}
	res, s, err := runResilient(cfg, prob, nSteps)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Faults.Recovery
	if rec == nil || rec.Crashes != 1 || rec.Restarts != 1 || !rec.Recovered {
		t.Fatalf("expected one crash + one restart, got %+v", rec)
	}
	if rec.Checkpoints == 0 || rec.LostWork <= 0 {
		t.Fatalf("recovery bookkeeping wrong: %+v", rec)
	}
	if res.Steps != nSteps {
		t.Fatalf("resilient run completed %d of %d steps", res.Steps, nSteps)
	}
	got, err := s.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	if d := field.MaxAbsDiff(got, ref, s.Level.Layout.Domain); d != 0 {
		t.Fatalf("recovered run differs from healthy run by %g", d)
	}
}

// A timing-only resilient run recovers via the fast-forward path.
func TestResilientCrashTimingOnly(t *testing.T) {
	cells, patches := grid.IV(32, 32, 64), grid.IV(2, 2, 2)
	const nSteps = 5
	prob, _ := burgersProblem(cells, patches, false)
	cfg := Config{Cells: cells, PatchCounts: patches, NumCGs: 2,
		Scheduler: scheduler.Config{Mode: scheduler.ModeAsync, TileSize: grid.IV(8, 8, 8)},
		Faults:    &faults.Plan{Seed: 3, CrashAtStep: 3, CheckpointEvery: 2},
	}
	res, err := RunResilient(cfg, prob, nSteps)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Faults.Recovery
	if rec == nil || rec.Crashes != 1 || !rec.Recovered || res.Steps != nSteps {
		t.Fatalf("timing-only recovery failed: steps=%d rec=%+v", res.Steps, rec)
	}
	if len(res.StepEnds) != nSteps {
		t.Fatalf("want %d step ends, got %d", nSteps, len(res.StepEnds))
	}
	for i := 1; i < len(res.StepEnds); i++ {
		if res.StepEnds[i] <= res.StepEnds[i-1] {
			t.Fatalf("step ends not increasing: %v", res.StepEnds)
		}
	}
	if res.WallTime <= res.StepEnds[len(res.StepEnds)-1]-res.StepEnds[0] {
		// Wall time includes lost work, checkpoint and restart overhead.
		t.Fatalf("wall time %v does not include recovery overhead", res.WallTime)
	}
}

// An injected offload stall must be aborted at its deadline and re-offloaded
// successfully, with numerics identical to a healthy run.
func TestReoffloadAfterInjectedStall(t *testing.T) {
	cells, patches := grid.IV(16, 16, 16), grid.IV(2, 2, 1)
	const nSteps = 3
	prob, u := burgersProblem(cells, patches, false)
	cfg := functionalCfg(cells, patches, 2, scheduler.ModeAsync, false)
	ref, _ := runAndGather(t, cfg, prob, u, nSteps)

	// A moderate stall rate: some offloads hang, their retries (fresh
	// draws) mostly succeed.
	cfg.Faults = &faults.Plan{Seed: 11, Stall: 0.3}
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nSteps)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Faults
	if fr == nil || fr.Injected.OffloadStalls == 0 {
		t.Fatalf("seed 11 injected no stalls: %+v", fr)
	}
	if fr.OffloadTimeouts == 0 || fr.Reoffloads == 0 {
		t.Fatalf("stalls not recovered by re-offload: %+v", fr)
	}
	got, err := s.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	if d := field.MaxAbsDiff(got, ref, s.Level.Layout.Domain); d != 0 {
		t.Fatalf("re-offloaded run differs from healthy run by %g", d)
	}
}

// With every offload stalling, gangs go unhealthy and kernels degrade to
// MPE execution — and the numerics still match the healthy async run.
func TestMPEFallbackNumericsMatchHealthyRun(t *testing.T) {
	cells, patches := grid.IV(16, 16, 16), grid.IV(2, 2, 1)
	const nSteps = 3
	prob, u := burgersProblem(cells, patches, false)
	for _, mode := range []scheduler.Mode{scheduler.ModeAsync, scheduler.ModeSync} {
		cfg := functionalCfg(cells, patches, 2, mode, false)
		ref, _ := runAndGather(t, cfg, prob, u, nSteps)

		cfg.Faults = &faults.Plan{Seed: 1, Stall: 1, MaxRetries: 1, UnhealthyAfter: 1}
		s, err := NewSimulation(cfg, prob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(nSteps)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		fr := res.Faults
		if fr == nil || fr.MPEFallbacks == 0 || fr.UnhealthyGangs == 0 {
			t.Fatalf("%v: expected MPE fallback under total stall, got %+v", mode, fr)
		}
		got, err := s.GatherField(u)
		if err != nil {
			t.Fatal(err)
		}
		if d := field.MaxAbsDiff(got, ref, s.Level.Layout.Domain); d != 0 {
			t.Fatalf("%v: MPE-fallback run differs from healthy run by %g", mode, d)
		}
	}
}

// Message drops, duplicates and delays must be survived by resend and
// duplicate suppression without corrupting the numerics.
func TestMessageFaultsRecovered(t *testing.T) {
	cells, patches := grid.IV(16, 16, 16), grid.IV(2, 2, 2)
	const nSteps = 4
	prob, u := burgersProblem(cells, patches, false)
	cfg := functionalCfg(cells, patches, 4, scheduler.ModeAsync, false)
	ref, _ := runAndGather(t, cfg, prob, u, nSteps)

	cfg.Faults = &faults.Plan{Seed: 2, Drop: 0.2, Dup: 0.2, Delay: 0.2, Degrade: 0.2}
	s, err := NewSimulation(cfg, prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(nSteps)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Faults
	if fr == nil || fr.Injected.MsgsDropped == 0 || fr.Injected.MsgsDuplicated == 0 {
		t.Fatalf("seed 2 injected no message faults: %+v", fr)
	}
	if fr.Resends < fr.Injected.MsgsDropped {
		t.Fatalf("dropped %d messages but resent only %d", fr.Injected.MsgsDropped, fr.Resends)
	}
	if fr.DupsDiscarded == 0 {
		t.Fatalf("duplicates injected but none discarded: %+v", fr)
	}
	got, err := s.GatherField(u)
	if err != nil {
		t.Fatal(err)
	}
	if d := field.MaxAbsDiff(got, ref, s.Level.Layout.Domain); d != 0 {
		t.Fatalf("faulty-network run differs from healthy run by %g", d)
	}
}

// Identical seed + plan must give byte-identical results, and a different
// seed a different fault history.
func TestResilientDeterminism(t *testing.T) {
	cells, patches := grid.IV(32, 32, 64), grid.IV(2, 2, 2)
	const nSteps = 4
	prob, _ := burgersProblem(cells, patches, false)
	run := func(seed uint64) string {
		cfg := Config{Cells: cells, PatchCounts: patches, NumCGs: 2,
			Scheduler: scheduler.Config{Mode: scheduler.ModeAsync, TileSize: grid.IV(8, 8, 8)},
			Faults:    faults.Default().Scaled(1)}
		cfg.Faults.Seed = seed
		res, err := RunResilient(cfg, prob, nSteps)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b, c := run(7), run(7), run(8)
	if a != b {
		t.Fatal("identical seed + plan produced different results")
	}
	if a == c {
		t.Fatal("different seeds produced identical fault histories")
	}
}

// A run that exhausts MaxRestarts is reported lost, with partial progress.
func TestResilientGivesUpAfterMaxRestarts(t *testing.T) {
	cells, patches := grid.IV(32, 32, 32), grid.IV(2, 2, 1)
	const nSteps = 4
	prob, _ := burgersProblem(cells, patches, false)
	cfg := Config{Cells: cells, PatchCounts: patches, NumCGs: 2,
		Scheduler: scheduler.Config{Mode: scheduler.ModeAsync, TileSize: grid.IV(8, 8, 8)},
		// Crash every incarnation (rate 1 redraws a crash point each
		// restart) and allow no restarts.
		Faults: &faults.Plan{Seed: 5, Crash: 1, MaxRestarts: 1, CheckpointEvery: 2},
	}
	res, err := RunResilient(cfg, prob, nSteps)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Faults.Recovery
	if rec == nil || rec.Recovered {
		t.Fatalf("run with certain repeated crashes should be lost: %+v", rec)
	}
	if res.Steps >= nSteps {
		t.Fatalf("lost run reports full completion: %d steps", res.Steps)
	}
}

// Fault-free results must not mention the fault plane at all.
func TestZeroPlanResultHasNoFaultFields(t *testing.T) {
	cells, patches := grid.IV(32, 32, 32), grid.IV(2, 2, 1)
	prob, _ := burgersProblem(cells, patches, false)
	cfg := Config{Cells: cells, PatchCounts: patches, NumCGs: 2,
		Scheduler: scheduler.Config{Mode: scheduler.ModeAsync, TileSize: grid.IV(8, 8, 8)}}
	res, err := RunResilient(cfg, prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Fault") || strings.Contains(string(b), "Recovery") {
		t.Fatalf("zero-plan result JSON leaks fault fields: %s", b)
	}
}
