package core_test

import (
	"fmt"
	"log"

	"sunuintah/internal/burgers"
	"sunuintah/internal/core"
	"sunuintah/internal/grid"
	"sunuintah/internal/scheduler"
	"sunuintah/internal/taskgraph"
)

// Example runs the Burgers model problem on four simulated core groups
// with the asynchronous Sunway scheduler and reports what executed.
func Example() {
	u := burgers.NewULabel()
	prob := core.Problem{
		Tasks:   []*taskgraph.Task{burgers.NewAdvanceTask(u, burgers.FastExpLib, false)},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{u: burgers.Initial},
		Dt:      burgers.StableDt(1.0/16, 1.0/16, 1.0/16),
	}
	cfg := core.Config{
		Cells:       grid.IV(16, 16, 16),
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      4,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, Functional: true},
	}
	sim, err := core.NewSimulation(cfg, prob)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steps: %d\n", res.Steps)
	fmt.Printf("kernel offloads: %d\n", res.Counters.Offloads)
	fmt.Printf("cells computed: %d\n", res.Counters.CellsComputed)
	// Output:
	// steps: 3
	// kernel offloads: 24
	// cells computed: 12288
}

// ExampleSimulation_Rebalance moves every patch to a new owner mid-run;
// the solution is unaffected.
func ExampleSimulation_Rebalance() {
	u := burgers.NewULabel()
	prob := core.Problem{
		Tasks:   []*taskgraph.Task{burgers.NewAdvanceTask(u, burgers.FastExpLib, false)},
		Initial: map[*taskgraph.Label]func(x, y, z float64) float64{u: burgers.Initial},
		Dt:      burgers.StableDt(1.0/16, 1.0/16, 1.0/16),
	}
	sim, err := core.NewSimulation(core.Config{
		Cells:       grid.IV(16, 16, 16),
		PatchCounts: grid.IV(2, 2, 2),
		NumCGs:      2,
		Scheduler:   scheduler.Config{Mode: scheduler.ModeAsync, Functional: true},
	}, prob)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(1); err != nil {
		log.Fatal(err)
	}
	// Swap the two ranks' patches.
	if err := sim.Rebalance([]int{1, 1, 1, 1, 0, 0, 0, 0}); err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rank of patch 0:", sim.Assignment()[0])
	// Output:
	// rank of patch 0: 1
}
