// Package sw26010 models the Sunway SW26010 processor as seen by one MPI
// rank: a core group (CG) with one management processing element (MPE), a
// cluster of 64 computing processing elements (CPEs) with 64 KB scratch-pad
// local data memories (LDM), a shared memory controller, DMA engines, the
// faaw atomic, and the precise per-CPE floating-point counters the paper
// uses to build Table I.
//
// The model is driven by the discrete-event engine in internal/sim and
// costed by internal/perf. It executes *real work* when the caller supplies
// kernels (functional mode) and pure timing otherwise.
package sw26010

// Counters mirrors the SW26010 hardware performance counters plus a few
// software counters the runtime keeps. Like the hardware, the FLOP counter
// counts a divide or square root as a single operation (Section VII-E).
type Counters struct {
	// Flops is the total floating-point operations executed on the CPEs.
	Flops int64
	// ExpFlops is the portion of Flops attributable to the software
	// exponential routines (the paper: ~215 of ~311 per cell).
	ExpFlops int64
	// MPEFlops counts floating-point work executed on the MPE (kernel
	// fallback in MPE-only mode, boundary-condition fills).
	MPEFlops int64
	// CellsComputed is the number of cells processed by kernels.
	CellsComputed int64
	// DMABytes is the total bytes moved by athread_get/athread_put.
	DMABytes int64
	// DMAOps is the number of DMA operations issued.
	DMAOps int64
	// Offloads is the number of kernel offloads to the CPE cluster.
	Offloads int64
	// FaawOps is the number of atomic fetch-and-add operations.
	FaawOps int64
}

// Sub returns c - o componentwise (used to isolate one run segment's
// counters from cumulative totals).
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Flops:         c.Flops - o.Flops,
		ExpFlops:      c.ExpFlops - o.ExpFlops,
		MPEFlops:      c.MPEFlops - o.MPEFlops,
		CellsComputed: c.CellsComputed - o.CellsComputed,
		DMABytes:      c.DMABytes - o.DMABytes,
		DMAOps:        c.DMAOps - o.DMAOps,
		Offloads:      c.Offloads - o.Offloads,
		FaawOps:       c.FaawOps - o.FaawOps,
	}
}

// Add accumulates o into c (used to aggregate per-CG counters machine-wide).
func (c *Counters) Add(o Counters) {
	c.Flops += o.Flops
	c.ExpFlops += o.ExpFlops
	c.MPEFlops += o.MPEFlops
	c.CellsComputed += o.CellsComputed
	c.DMABytes += o.DMABytes
	c.DMAOps += o.DMAOps
	c.Offloads += o.Offloads
	c.FaawOps += o.FaawOps
}
