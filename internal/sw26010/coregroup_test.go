package sw26010

import (
	"errors"
	"testing"

	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
)

func TestMachineConstruction(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, perf.DefaultParams(), 4)
	if m.NumCGs() != 4 {
		t.Fatalf("NumCGs = %d", m.NumCGs())
	}
	for i := 0; i < 4; i++ {
		if m.CG(i).ID != i {
			t.Errorf("CG %d has ID %d", i, m.CG(i).ID)
		}
	}
	if m.Engine() != eng {
		t.Error("engine not shared")
	}
}

func TestPeakFlopsScalesWithCGs(t *testing.T) {
	eng := sim.NewEngine()
	p := perf.DefaultParams()
	m := NewMachine(eng, p, 128)
	want := 128 * p.CGPeakFlops()
	if m.PeakFlops() != want {
		t.Fatalf("PeakFlops = %v, want %v", m.PeakFlops(), want)
	}
}

func TestMemoryAccountingReproducesTableIII(t *testing.T) {
	// Table III: a 4 GB problem (64x64x512 patches on 1 CG holding the
	// whole 512x512x1024 grid) crashes with memory allocation errors,
	// while the 2 GB problem fits.
	eng := sim.NewEngine()
	cg := NewMachine(eng, perf.DefaultParams(), 1).CG(0)
	if err := cg.Allocate(2 << 30); err != nil {
		t.Fatalf("2 GB allocation should succeed: %v", err)
	}
	cg.Free(2 << 30)
	err := cg.Allocate(4 << 30)
	if err == nil {
		t.Fatal("4 GB allocation should fail (Table III starred rows)")
	}
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("error type = %T", err)
	}
	if oom.CG != 0 || oom.Requested != 4<<30 {
		t.Errorf("oom detail = %+v", oom)
	}
}

func TestAllocateFreeBalance(t *testing.T) {
	eng := sim.NewEngine()
	cg := NewMachine(eng, perf.DefaultParams(), 1).CG(0)
	if err := cg.Allocate(100); err != nil {
		t.Fatal(err)
	}
	if err := cg.Allocate(200); err != nil {
		t.Fatal(err)
	}
	if cg.AllocatedBytes() != 300 {
		t.Fatalf("allocated = %d", cg.AllocatedBytes())
	}
	cg.Free(300)
	if cg.AllocatedBytes() != 0 {
		t.Fatalf("allocated after free = %d", cg.AllocatedBytes())
	}
}

func TestFreeUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eng := sim.NewEngine()
	NewMachine(eng, perf.DefaultParams(), 1).CG(0).Free(1)
}

func TestCountersAggregate(t *testing.T) {
	a := Counters{Flops: 100, ExpFlops: 70, CellsComputed: 10, DMABytes: 5, DMAOps: 1, Offloads: 1, FaawOps: 64, MPEFlops: 3}
	b := Counters{Flops: 50, ExpFlops: 30, CellsComputed: 5, DMABytes: 2, DMAOps: 1, Offloads: 1, FaawOps: 64}
	a.Add(b)
	if a.Flops != 150 || a.ExpFlops != 100 || a.CellsComputed != 15 ||
		a.DMABytes != 7 || a.DMAOps != 2 || a.Offloads != 2 || a.FaawOps != 128 || a.MPEFlops != 3 {
		t.Fatalf("aggregate = %+v", a)
	}
}
