package sw26010

import (
	"fmt"

	"sunuintah/internal/faults"
	"sunuintah/internal/obs"
	"sunuintah/internal/perf"
	"sunuintah/internal/sim"
)

// CoreGroup is one CG of a SW26010 processor used as an independent
// computing node (the paper's usual practice). It owns the memory
// accounting, the hardware counters, and the CPE cluster used for offloads.
type CoreGroup struct {
	ID       int
	Params   perf.Params
	Counters Counters

	// Faults, when non-nil, injects CPE-side failures (stalled gangs and
	// stragglers) into offloads launched on this core group. All core
	// groups of a simulation share one injector.
	Faults *faults.Injector

	// Probes, when non-nil, is this rank's flight-recorder hook set:
	// Allocate/Free feed the memory-footprint series and offload launches
	// feed the DMA-traffic series. Only this CG's engine events touch it.
	Probes *obs.RankProbes

	eng        *sim.Engine
	allocBytes int64
	peakBytes  int64
	noiseState uint64
}

// Machine is the collection of core groups participating in a run, sharing
// one simulation engine and one parameter set.
type Machine struct {
	Params perf.Params
	eng    *sim.Engine
	cgs    []*CoreGroup
}

// NewMachine creates nCGs core groups on the given engine.
func NewMachine(eng *sim.Engine, params perf.Params, nCGs int) *Machine {
	engs := make([]*sim.Engine, nCGs)
	for i := range engs {
		engs[i] = eng
	}
	return NewMachineWithEngines(engs, params)
}

// NewMachineWithEngines creates one core group per engine — the sharded
// construction, where engs[i] is the shard engine owning core group i.
// Every per-CG state (counters, memory accounting, noise stream) is
// already CG-local, so the only sharding concern is that each CG's
// offloads and timers land on its own engine.
func NewMachineWithEngines(engs []*sim.Engine, params perf.Params) *Machine {
	if len(engs) == 0 {
		panic("sw26010: need at least one core group")
	}
	m := &Machine{Params: params, eng: engs[0]}
	for i, eng := range engs {
		m.cgs = append(m.cgs, &CoreGroup{
			ID:         i,
			Params:     params,
			eng:        eng,
			noiseState: params.NoiseSeed*0x9e3779b97f4a7c15 + uint64(i+1),
		})
	}
	return m
}

// Jitter returns a deterministic pseudo-random slowdown factor in
// [1, 1+NoiseFraction), advancing the core group's noise stream
// (splitmix64). With NoiseFraction zero it always returns exactly 1, and
// runs are bit-reproducible. This models the machine instability that
// made the paper measure each case several times and keep the best.
func (cg *CoreGroup) Jitter() float64 {
	if cg.Params.NoiseFraction == 0 {
		return 1
	}
	cg.noiseState += 0x9e3779b97f4a7c15
	z := cg.noiseState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / float64(1<<53)
	return 1 + cg.Params.NoiseFraction*u
}

// NumCGs returns the number of core groups.
func (m *Machine) NumCGs() int { return len(m.cgs) }

// CG returns core group i.
func (m *Machine) CG(i int) *CoreGroup { return m.cgs[i] }

// Engine returns the simulation engine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// TotalCounters aggregates the counters of every core group.
func (m *Machine) TotalCounters() Counters {
	var t Counters
	for _, cg := range m.cgs {
		t.Add(cg.Counters)
	}
	return t
}

// PeakFlops returns the aggregate theoretical peak of the running CGs, the
// denominator of the paper's floating-point efficiency (Figure 10).
func (m *Machine) PeakFlops() float64 {
	return float64(len(m.cgs)) * m.Params.CGPeakFlops()
}

// ErrOutOfMemory is returned when a core group's usable field memory is
// exhausted, reproducing the paper's "crashes with memory allocation
// errors" cases in Table III.
type ErrOutOfMemory struct {
	CG        int
	Requested int64
	InUse     int64
	Limit     int64
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("sw26010: CG %d memory allocation error: request %d B with %d B in use exceeds usable %d B",
		e.CG, e.Requested, e.InUse, e.Limit)
}

// Allocate reserves bytes of field memory on the core group.
func (cg *CoreGroup) Allocate(bytes int64) error {
	if bytes < 0 {
		panic("sw26010: negative allocation")
	}
	if cg.allocBytes+bytes > cg.Params.UsableFieldBytesPerCG {
		return &ErrOutOfMemory{CG: cg.ID, Requested: bytes, InUse: cg.allocBytes,
			Limit: cg.Params.UsableFieldBytesPerCG}
	}
	cg.allocBytes += bytes
	if cg.allocBytes > cg.peakBytes {
		cg.peakBytes = cg.allocBytes
	}
	cg.Probes.Mem(cg.eng.Now(), cg.allocBytes)
	return nil
}

// Free releases bytes previously allocated.
func (cg *CoreGroup) Free(bytes int64) {
	cg.allocBytes -= bytes
	if cg.allocBytes < 0 {
		panic("sw26010: allocation accounting underflow")
	}
	cg.Probes.Mem(cg.eng.Now(), cg.allocBytes)
}

// AllocatedBytes returns the current field-memory footprint.
func (cg *CoreGroup) AllocatedBytes() int64 { return cg.allocBytes }

// PeakBytes returns the high-water field-memory footprint, for comparing
// scrubbing policies.
func (cg *CoreGroup) PeakBytes() int64 { return cg.peakBytes }

// Engine returns the simulation engine the core group runs on.
func (cg *CoreGroup) Engine() *sim.Engine { return cg.eng }

// cgSnap is a core group's rewindable scalar state.
type cgSnap struct {
	counters   Counters
	allocBytes int64
	peakBytes  int64
	noiseState uint64
}

// SaveState captures the core group's counters, memory accounting and
// noise stream (the sim.StateSaver shape, for optimistic rollback and
// in-memory rank rewind).
func (cg *CoreGroup) SaveState() any {
	return cgSnap{cg.Counters, cg.allocBytes, cg.peakBytes, cg.noiseState}
}

// RestoreState rewinds the core group to a SaveState snapshot. Callers
// restoring warehouses alongside must restore them first: their
// Free/Allocate churn moves allocBytes, and this overwrite is what makes
// the final accounting exact.
func (cg *CoreGroup) RestoreState(state any) {
	s := state.(cgSnap)
	cg.Counters = s.counters
	cg.allocBytes = s.allocBytes
	cg.peakBytes = s.peakBytes
	cg.noiseState = s.noiseState
}
