package admission

import (
	"sync"
	"testing"
	"time"

	"sunuintah/internal/runner"
)

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	if d := c.Admit("x", runner.Spec{}); !d.OK {
		t.Fatalf("nil controller rejected: %+v", d)
	}
	c.Done(1) // must not panic
	c.Reserve()
	if m := c.Metrics(); m.Admitted != 0 {
		t.Fatalf("nil metrics = %+v", m)
	}
}

func TestQueueFullAndRetryAfter(t *testing.T) {
	c := New(Config{MaxQueued: 2, MaxRunning: 1})
	for i := 0; i < 3; i++ {
		if d := c.Admit("a", runner.Spec{}); !d.OK {
			t.Fatalf("admit %d rejected: %+v", i, d)
		}
	}
	d := c.Admit("a", runner.Spec{})
	if d.OK || d.Reason != ReasonQueueFull {
		t.Fatalf("expected queue_full, got %+v", d)
	}
	if d.RetryAfter < time.Second {
		t.Fatalf("Retry-After %v below 1s floor", d.RetryAfter)
	}

	// The Retry-After estimate scales with the observed exec-time EWMA:
	// after observing 10s executions, draining a 2-deep queue through one
	// worker should be priced near 10s x 3 (clamped at 300s).
	c.Done(10)
	c.Reserve()
	d = c.Admit("a", runner.Spec{})
	if d.OK {
		t.Fatal("still full, should reject")
	}
	if d.RetryAfter < 10*time.Second {
		t.Fatalf("Retry-After %v does not reflect 10s EWMA", d.RetryAfter)
	}

	// Releasing a slot readmits.
	c.Release()
	if d := c.Admit("a", runner.Spec{}); !d.OK {
		t.Fatalf("admit after release rejected: %+v", d)
	}
}

func TestTenantQuota(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := New(Config{MaxQueued: 100, MaxRunning: 4, Quota: Quota{Rate: 1, Burst: 2}, Now: clock})

	// Tenant a burns its burst of 2; the third is refused with a quota
	// Retry-After near the refill time.
	for i := 0; i < 2; i++ {
		if d := c.Admit("a", runner.Spec{}); !d.OK {
			t.Fatalf("a admit %d rejected: %+v", i, d)
		}
	}
	d := c.Admit("a", runner.Spec{})
	if d.OK || d.Reason != ReasonQuota {
		t.Fatalf("expected quota rejection, got %+v", d)
	}
	if d.RetryAfter < time.Second {
		t.Fatalf("quota Retry-After %v below floor", d.RetryAfter)
	}

	// Tenant b is unaffected.
	if d := c.Admit("b", runner.Spec{}); !d.OK {
		t.Fatalf("b rejected by a's quota: %+v", d)
	}

	// After 1.5s the bucket holds 1.5 tokens; one admission passes, the
	// next is refused again.
	now = now.Add(1500 * time.Millisecond)
	if d := c.Admit("a", runner.Spec{}); !d.OK {
		t.Fatalf("a not refilled: %+v", d)
	}
	if d := c.Admit("a", runner.Spec{}); d.OK {
		t.Fatal("a over quota admitted")
	}

	m := c.Metrics()
	if m.Quota != 2 || m.Admitted != 4 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestCostShedding(t *testing.T) {
	cost := func(s runner.Spec) float64 {
		if s.Steps >= 100 {
			return 50
		}
		return 0.1
	}
	c := New(Config{MaxQueued: 4, MaxRunning: 1, Cost: cost, ShedCost: 1, ShedFraction: 0.5})
	cheap := runner.Spec{Steps: 1}
	dear := runner.Spec{Steps: 100}

	// Below the shed threshold everything is admitted, expensive or not.
	if d := c.Admit("a", dear); !d.OK {
		t.Fatalf("unloaded shed: %+v", d)
	}
	// Fill to the threshold: outstanding 3 = 1 running + 2 queued =
	// ShedFraction 0.5 x MaxQueued 4.
	c.Admit("a", cheap)
	c.Admit("a", cheap)

	if d := c.Admit("a", dear); d.OK || d.Reason != ReasonShed {
		t.Fatalf("expected shed of expensive spec under load, got %+v", d)
	}
	if d := c.Admit("a", cheap); !d.OK {
		t.Fatalf("cheap spec shed too: %+v", d)
	}
	if m := c.Metrics(); m.Shed != 1 {
		t.Fatalf("shed count = %d", m.Shed)
	}
}

func TestBucketSweepBoundsTenants(t *testing.T) {
	now := time.Unix(0, 0)
	c := New(Config{MaxQueued: 1 << 20, MaxRunning: 1, Quota: Quota{Rate: 100, Burst: 100}, Now: func() time.Time { return now }})
	for i := 0; i < maxTenants+100; i++ {
		tenant := string(rune('a'+i%26)) + string(rune('0'+i%10)) + time.Duration(i).String()
		c.Admit(tenant, runner.Spec{})
		now = now.Add(10 * time.Second) // every earlier bucket fully refills
	}
	c.mu.Lock()
	n := len(c.buckets)
	c.mu.Unlock()
	if n > maxTenants {
		t.Fatalf("bucket map grew to %d (> %d)", n, maxTenants)
	}
}

func TestConcurrentAdmitReleaseRace(t *testing.T) {
	c := New(Config{MaxQueued: 8, MaxRunning: 4, Quota: Quota{Rate: 1e6, Burst: 1e6}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := string(rune('a' + g))
			for i := 0; i < 500; i++ {
				if d := c.Admit(tenant, runner.Spec{}); d.OK {
					c.Done(0.001)
				}
			}
		}(g)
	}
	wg.Wait()
	m := c.Metrics()
	if m.Outstanding != 0 {
		t.Fatalf("outstanding = %d after all released", m.Outstanding)
	}
	if m.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
}
