// Package admission is the front door of a job service built on
// runner.Pool: a bounded admission window, per-tenant token-bucket
// quotas, and cost-based load shedding, with Retry-After hints computed
// from an EWMA of observed execution times.
//
// The controller deliberately does not queue anything itself — the pool
// owns the queue. Admission only decides whether one more job may join
// the pool's outstanding set, so overload turns into fast 429 responses
// at the HTTP edge instead of unbounded memory growth behind it (the
// backpressure discipline that keeps asynchronous task systems stable
// under load).
//
// A nil *Controller admits everything, so callers can wire admission
// through unconditionally and turn it off by passing nil.
package admission

import (
	"sync"
	"time"

	"sunuintah/internal/runner"
)

// Rejection reasons, also used as metric label values.
const (
	ReasonQueueFull = "queue_full"
	ReasonQuota     = "quota"
	ReasonShed      = "shed"
)

// Quota is a per-tenant token bucket: Rate tokens (job admissions) per
// second with capacity Burst.
type Quota struct {
	// Rate is admissions per second per tenant; <= 0 disables quotas.
	Rate float64
	// Burst is the bucket capacity; <= 0 defaults to max(Rate, 1).
	Burst float64
}

// Config configures a Controller.
type Config struct {
	// MaxQueued is the number of admitted jobs allowed to wait beyond the
	// executing set; <= 0 defaults to 256.
	MaxQueued int
	// MaxRunning is the executing-slot count — normally the pool's worker
	// count; <= 0 defaults to 1.
	MaxRunning int
	// Quota is the per-tenant admission quota (zero disables).
	Quota Quota
	// Cost estimates a spec's execution demand (seconds of simulated
	// compute; any consistent unit works). Nil disables shedding.
	Cost func(spec runner.Spec) float64
	// ShedCost is the cost above which a spec counts as expensive; <= 0
	// disables shedding.
	ShedCost float64
	// ShedFraction is the queue-fill fraction above which expensive specs
	// are shed while cheap ones are still admitted; <= 0 defaults to 0.5.
	// Expensive work is refused first as pressure rises; the hard
	// MaxQueued bound refuses everything.
	ShedFraction float64
	// Now overrides the clock for tests.
	Now func() time.Time
}

// Decision is the outcome of one Admit call.
type Decision struct {
	OK bool
	// Reason is the rejection class (ReasonQueueFull, ReasonQuota,
	// ReasonShed); empty on admission.
	Reason string
	// RetryAfter is the suggested client back-off: the estimated time for
	// enough of the backlog (or the tenant's bucket) to drain.
	RetryAfter time.Duration
}

// Metrics is a point-in-time snapshot of the controller's counters.
type Metrics struct {
	Admitted    int64   `json:"admitted"`
	QueueFull   int64   `json:"queueFull"`
	Quota       int64   `json:"quota"`
	Shed        int64   `json:"shed"`
	Outstanding int     `json:"outstanding"`
	ExecEWMA    float64 `json:"execEWMASeconds"`
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxTenants bounds the bucket map; beyond it, full stale buckets are
// swept so a tenant-ID cardinality attack cannot grow memory unboundedly.
const maxTenants = 4096

// Controller applies the admission policy. Safe for concurrent use.
type Controller struct {
	cfg Config

	mu          sync.Mutex
	outstanding int // admitted jobs not yet released
	ewma        float64
	buckets     map[string]*bucket

	admitted  int64
	queueFull int64
	quota     int64
	shed      int64
}

// New builds a controller, applying Config defaults.
func New(cfg Config) *Controller {
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 256
	}
	if cfg.MaxRunning <= 0 {
		cfg.MaxRunning = 1
	}
	if cfg.ShedFraction <= 0 {
		cfg.ShedFraction = 0.5
	}
	if cfg.Quota.Rate > 0 && cfg.Quota.Burst <= 0 {
		cfg.Quota.Burst = cfg.Quota.Rate
		if cfg.Quota.Burst < 1 {
			cfg.Quota.Burst = 1
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Controller{cfg: cfg, buckets: map[string]*bucket{}}
}

// execEstimate is the per-job drain estimate: the exec-time EWMA, or one
// second before any observation has arrived.
func (c *Controller) execEstimate() float64 {
	if c.ewma > 0 {
		return c.ewma
	}
	return 1
}

// clampRetry keeps Retry-After honest and HTTP-friendly: at least one
// second (the header's resolution), at most five minutes.
func clampRetry(sec float64) time.Duration {
	if sec < 1 {
		sec = 1
	}
	if sec > 300 {
		sec = 300
	}
	return time.Duration(sec * float64(time.Second))
}

// Admit decides whether one more job from tenant may join the pool. On
// admission the caller owes exactly one Release (or Done) call.
func (c *Controller) Admit(tenant string, spec runner.Spec) Decision {
	if c == nil {
		return Decision{OK: true}
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	queued := c.outstanding - c.cfg.MaxRunning
	if queued < 0 {
		queued = 0
	}
	// Hard bound first: the window is full regardless of who asks.
	if c.outstanding >= c.cfg.MaxRunning+c.cfg.MaxQueued {
		c.queueFull++
		drain := c.execEstimate() * float64(queued+1) / float64(c.cfg.MaxRunning)
		return Decision{Reason: ReasonQueueFull, RetryAfter: clampRetry(drain)}
	}
	// Shed expensive specs while the queue is merely loaded, so cheap
	// work keeps flowing as pressure rises.
	if c.cfg.Cost != nil && c.cfg.ShedCost > 0 &&
		float64(queued) >= c.cfg.ShedFraction*float64(c.cfg.MaxQueued) {
		if cost := c.cfg.Cost(spec); cost > c.cfg.ShedCost {
			c.shed++
			drain := c.execEstimate() * float64(queued) / float64(c.cfg.MaxRunning)
			return Decision{Reason: ReasonShed, RetryAfter: clampRetry(drain)}
		}
	}
	// Tenant quota last, so a rejected-anyway request never burns a token.
	if c.cfg.Quota.Rate > 0 {
		b := c.bucketFor(tenant)
		if b.tokens < 1 {
			c.quota++
			wait := (1 - b.tokens) / c.cfg.Quota.Rate
			return Decision{Reason: ReasonQuota, RetryAfter: clampRetry(wait)}
		}
		b.tokens--
	}
	c.outstanding++
	c.admitted++
	return Decision{OK: true}
}

// bucketFor returns tenant's refilled bucket. Caller holds c.mu.
func (c *Controller) bucketFor(tenant string) *bucket {
	now := c.cfg.Now()
	b, ok := c.buckets[tenant]
	if !ok {
		if len(c.buckets) >= maxTenants {
			c.sweepBuckets(now)
		}
		b = &bucket{tokens: c.cfg.Quota.Burst, last: now}
		c.buckets[tenant] = b
		return b
	}
	dt := now.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens += dt * c.cfg.Quota.Rate
		if b.tokens > c.cfg.Quota.Burst {
			b.tokens = c.cfg.Quota.Burst
		}
		b.last = now
	}
	return b
}

// sweepBuckets drops buckets that have fully refilled (their tenant is
// idle and indistinguishable from a new one). Caller holds c.mu.
func (c *Controller) sweepBuckets(now time.Time) {
	for t, b := range c.buckets {
		refilled := b.tokens + now.Sub(b.last).Seconds()*c.cfg.Quota.Rate
		if refilled >= c.cfg.Quota.Burst {
			delete(c.buckets, t)
		}
	}
}

// Reserve admits a job unconditionally — restart recovery readmitting
// journaled jobs that were accepted by a previous incarnation. The caller
// owes one Release (or Done) per Reserve.
func (c *Controller) Reserve() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.outstanding++
	c.admitted++
	c.mu.Unlock()
}

// Done releases one admitted slot and, when execSeconds > 0, folds the
// observed execution time into the EWMA that prices Retry-After (cache
// hits pass 0: they cost the queue nothing and should not inflate it).
func (c *Controller) Done(execSeconds float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.outstanding > 0 {
		c.outstanding--
	}
	if execSeconds > 0 {
		if c.ewma == 0 {
			c.ewma = execSeconds
		} else {
			c.ewma = 0.2*execSeconds + 0.8*c.ewma
		}
	}
	c.mu.Unlock()
}

// Release is Done without an execution-time observation.
func (c *Controller) Release() { c.Done(0) }

// Metrics snapshots the controller's counters.
func (c *Controller) Metrics() Metrics {
	if c == nil {
		return Metrics{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Metrics{
		Admitted:    c.admitted,
		QueueFull:   c.queueFull,
		Quota:       c.quota,
		Shed:        c.shed,
		Outstanding: c.outstanding,
		ExecEWMA:    c.ewma,
	}
}
