package workload

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"sunuintah/internal/sim"
	"sunuintah/internal/trace"
)

func toSim(t float64) sim.Time { return sim.Time(t) }

func TestDefaultScenarioValid(t *testing.T) {
	if err := DefaultScenario().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExpandDeterministic(t *testing.T) {
	// Same spec + seed => byte-identical schedule. The schedule is pure
	// data, so worker counts and shard counts cannot touch it; this
	// pins that no global randomness sneaks in either.
	a, err := DefaultScenario().Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultScenario().Expand()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("two expansions of the same scenario differ")
	}

	reseeded := DefaultScenario()
	reseeded.Seed = 2
	c, err := reseeded.Expand()
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("expansion ignores the scenario seed")
	}
}

func TestExpandSchedule(t *testing.T) {
	sc := DefaultScenario()
	jobs, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs expanded")
	}
	// Sorted by arrival, and all inside the scenario's total duration.
	var total float64
	for _, ph := range sc.Phases {
		total += ph.Duration
	}
	last := -1.0
	perPhase := map[string]int{}
	for _, j := range jobs {
		if j.At < last {
			t.Fatalf("jobs out of order: %g after %g", j.At, last)
		}
		last = j.At
		if j.At < 0 || j.At >= total {
			t.Fatalf("job at %g outside scenario duration %g", j.At, total)
		}
		perPhase[j.Phase]++
	}
	for _, ph := range sc.Phases {
		if perPhase[ph.Name] == 0 {
			t.Fatalf("phase %q produced no jobs (got %v)", ph.Name, perPhase)
		}
	}
	// The storm phase emits exactly burst*waves jobs, cycling layouts
	// and reseeding the mix each wave.
	storm := sc.Phases[2]
	waves := int(math.Ceil(storm.Duration / storm.Arrival.Every))
	if want := waves * storm.Arrival.Burst; perPhase[storm.Name] != want {
		t.Fatalf("storm emitted %d jobs, want %d", perPhase[storm.Name], want)
	}
	layouts := map[string]bool{}
	stormPhysics := map[string]bool{}
	for _, j := range jobs {
		if j.Phase != storm.Name {
			continue
		}
		layouts[j.Spec.Layout] = true
		stormPhysics[j.Spec.Physics] = true
	}
	if len(layouts) != waves && len(layouts) != len(storm.Arrival.Layouts) {
		t.Fatalf("storm layouts seen: %v", layouts)
	}
	if len(stormPhysics) < 2 {
		t.Fatalf("storm waves share a physics assignment seed: %v", stormPhysics)
	}
	// The constant phase's job count is close to rate*duration.
	steady := sc.Phases[0]
	want := steady.Arrival.Rate * steady.Duration
	got := float64(perPhase[steady.Name])
	if got < want/3 || got > want*3 {
		t.Fatalf("steady phase emitted %g jobs, expected about %g", got, want)
	}
}

func TestGoldenParseCanonical(t *testing.T) {
	in := `{
		"name": "golden",
		"seed": 7,
		"base": {"cells": "16x16x32", "layout": "2x2x4", "cgs": 4, "variant": "acc.async", "steps": 2},
		"phases": [
			{"name": "warm", "duration": 2, "arrival": {"pattern": "constant", "rate": 1}},
			{"name": "tide", "duration": 4,
			 "arrival": {"pattern": "periodic", "rate": 2, "periods": [{"seconds": 2, "amplitude": 0.5}]},
			 "mix": {"heat3d": 1, "burgers": 2}},
			{"name": "storm", "duration": 3,
			 "arrival": {"pattern": "storm", "burst": 2, "every": 1, "layouts": ["2x2x4", "4x4x2"]}}
		]
	}`
	sc, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"name":"golden","seed":7,"base":{"cells":"16x16x32","layout":"2x2x4","cgs":4,"variant":"acc.async","steps":2},"phases":[{"name":"warm","duration":2,"arrival":{"pattern":"constant","rate":1}},{"name":"tide","duration":4,"arrival":{"pattern":"periodic","rate":2,"periods":[{"seconds":2,"amplitude":0.5}]},"mix":{"burgers":2,"heat3d":1}},{"name":"storm","duration":3,"arrival":{"pattern":"storm","burst":2,"every":1,"layouts":["2x2x4","4x4x2"]}}]}`
	if got := sc.Canonical(); got != golden {
		t.Fatalf("canonical form drifted:\n got %s\nwant %s", got, golden)
	}
	// Canonical round-trips to an identical scenario.
	back, err := Parse([]byte(sc.Canonical()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("canonical round trip changed the scenario")
	}
}

func TestParseRejections(t *testing.T) {
	base := `"base": {"cells": "8x8x8", "cgs": 2, "variant": "acc.sync", "steps": 1}`
	cases := []struct {
		name, in, want string
	}{
		{"unknown pattern",
			`{"name":"x","seed":1,` + base + `,"phases":[{"name":"p","duration":1,"arrival":{"pattern":"poisson","rate":1}}]}`,
			"unknown arrival pattern"},
		{"unknown field",
			`{"name":"x","sead":1,` + base + `,"phases":[]}`,
			"unknown field"},
		{"no phases",
			`{"name":"x","seed":1,` + base + `,"phases":[]}`,
			"no phases"},
		{"negative duration",
			`{"name":"x","seed":1,` + base + `,"phases":[{"name":"p","duration":-1,"arrival":{"pattern":"constant","rate":1}}]}`,
			"duration must be positive"},
		{"periodic without periods",
			`{"name":"x","seed":1,` + base + `,"phases":[{"name":"p","duration":1,"arrival":{"pattern":"periodic","rate":1}}]}`,
			"at least one period"},
		{"storm without layouts",
			`{"name":"x","seed":1,` + base + `,"phases":[{"name":"p","duration":1,"arrival":{"pattern":"storm","every":1}}]}`,
			"layout cycle"},
		{"bad storm layout",
			`{"name":"x","seed":1,` + base + `,"phases":[{"name":"p","duration":1,"arrival":{"pattern":"storm","every":1,"layouts":["4x4"]}}]}`,
			"bad storm layout"},
		{"layouts on burst",
			`{"name":"x","seed":1,` + base + `,"phases":[{"name":"p","duration":1,"arrival":{"pattern":"burst","every":1,"layouts":["2x2x2"]}}]}`,
			"only apply to the storm"},
		{"unknown mix model",
			`{"name":"x","seed":1,` + base + `,"phases":[{"name":"p","duration":1,"arrival":{"pattern":"constant","rate":1},"mix":{"plasma":1}}]}`,
			"unknown model"},
		{"missing template",
			`{"name":"x","seed":1,"phases":[{"name":"p","duration":1,"arrival":{"pattern":"constant","rate":1}}]}`,
			"problem name or custom cells"},
		{"bad physics",
			`{"name":"x","seed":1,"base":{"cells":"8x8x8","cgs":2,"variant":"acc.sync","steps":1,"physics":"mix:burgers"},"phases":[{"name":"p","duration":1,"arrival":{"pattern":"constant","rate":1}}]}`,
			"name=weight"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.in))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestPhaseOverridesInherit(t *testing.T) {
	sc := DefaultScenario()
	sc.Phases[0].Jobs = &Template{Steps: 9, Variant: "host.sync"}
	jobs, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Phase != sc.Phases[0].Name {
			continue
		}
		if j.Spec.Steps != 9 || j.Spec.Variant != "host.sync" {
			t.Fatalf("override lost: %+v", j.Spec)
		}
		if j.Spec.Cells != sc.Base.Cells || j.Spec.CGs != sc.Base.CGs {
			t.Fatalf("inherited fields lost: %+v", j.Spec)
		}
	}
}

func TestFromTraceReplays(t *testing.T) {
	// A synthetic timeline: burgers-heavy first half, heat-heavy second
	// half. The replay must recover the activity split.
	var events []trace.Event
	add := func(name string, at float64, n int) {
		for i := 0; i < n; i++ {
			events = append(events, trace.Event{
				Kind: trace.KindKernel, Name: name,
				Start: 0, End: 0,
			})
			events[len(events)-1].Start = toSim(at + float64(i)*1e-4)
			events[len(events)-1].End = toSim(at + float64(i)*1e-4 + 5e-5)
		}
	}
	add("burgers.advance", 0.01, 16)
	add("heat.advance", 0.06, 8)
	add("advection.advance", 0.07, 8)
	// A non-kernel event extends the horizon to 0.1.
	events = append(events, trace.Event{Kind: trace.KindComm, Name: "send", Start: toSim(0.099), End: toSim(0.1)})

	sc, err := FromTrace(events, ReplayOptions{
		Bins:        2,
		TasksPerJob: 8,
		Base:        Template{Cells: "8x8x8", CGs: 2, Variant: "acc.sync", Steps: 1},
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Phases) != 2 {
		t.Fatalf("want 2 replay phases, got %d", len(sc.Phases))
	}
	// First window: 16 burgers kernels = 2 jobs over 0.05s => rate 40.
	p0 := sc.Phases[0]
	if p0.Jobs == nil || p0.Jobs.Physics != "burgers" || len(p0.Mix) != 0 {
		t.Fatalf("first window should be pure burgers: %+v", p0)
	}
	if math.Abs(p0.Arrival.Rate-40) > 1e-9 {
		t.Fatalf("first window rate = %g, want 40", p0.Arrival.Rate)
	}
	// Second window mixes heat3d and advection evenly.
	p1 := sc.Phases[1]
	if len(p1.Mix) != 2 || p1.Mix["heat3d"] != p1.Mix["advection"] {
		t.Fatalf("second window mix = %v", p1.Mix)
	}
	// And the replay scenario expands through the normal path.
	jobs, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("replay scenario expands to nothing")
	}
}

func TestFromTraceRejectsEmpty(t *testing.T) {
	if _, err := FromTrace(nil, ReplayOptions{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := FromTrace([]trace.Event{{Kind: trace.KindComm, Name: "send", End: toSim(1)}}, ReplayOptions{}); err == nil {
		t.Fatal("kernel-free trace accepted")
	}
}

func BenchmarkExpand(b *testing.B) {
	sc := DefaultScenario()
	var jobs int
	for i := 0; i < b.N; i++ {
		js, err := sc.Expand()
		if err != nil {
			b.Fatal(err)
		}
		jobs = len(js)
	}
	b.ReportMetric(float64(jobs), "jobs/op")
}
