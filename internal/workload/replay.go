package workload

import (
	"fmt"
	"sort"

	"sunuintah/internal/physics"
	"sunuintah/internal/trace"
)

// ReplayOptions controls how a recorded trace folds back into a
// synthetic scenario.
type ReplayOptions struct {
	// Bins is the number of time windows (= replay phases) the recorded
	// timeline is cut into. Default 3.
	Bins int
	// TasksPerJob is how many observed kernel intervals correspond to
	// one replayed job — the granularity knob converting task activity
	// into job arrivals. Default 8.
	TasksPerJob int
	// Base is the job template of the replayed jobs (sizes, variant,
	// steps). Physics is overridden per phase by the observed mix.
	Base Template
	// Seed seeds the replay scenario's expansion.
	Seed uint64
}

// FromTrace converts a recorded run's event timeline into a synthetic
// replay scenario: the timeline is cut into equal windows, each window
// becomes a constant-arrival phase whose rate reproduces the observed
// kernel-task completion rate (TasksPerJob intervals = one job) and
// whose physics mix matches the observed share of each model's kernels
// in that window. The result goes through Expand like any hand-written
// scenario — a recorded workload replays through the same path.
func FromTrace(events []trace.Event, opt ReplayOptions) (*Scenario, error) {
	if opt.Bins <= 0 {
		opt.Bins = 3
	}
	if opt.TasksPerJob <= 0 {
		opt.TasksPerJob = 8
	}
	var end float64
	type kernelEv struct {
		at    float64
		model string
	}
	var kernels []kernelEv
	for _, e := range events {
		if t := float64(e.End); t > end {
			end = t
		}
		if e.Kind != trace.KindKernel && e.Kind != trace.KindMPEKern {
			continue
		}
		m := physics.ModelForTask(e.Name)
		if m == "" {
			continue
		}
		kernels = append(kernels, kernelEv{at: float64(e.Start), model: m})
	}
	if len(kernels) == 0 || end <= 0 {
		return nil, fmt.Errorf("workload: trace has no recognisable kernel intervals to replay")
	}
	sort.Slice(kernels, func(i, j int) bool { return kernels[i].at < kernels[j].at })

	width := end / float64(opt.Bins)
	sc := &Scenario{
		Name: "replay",
		Seed: opt.Seed,
		Base: opt.Base,
	}
	for b := 0; b < opt.Bins; b++ {
		lo, hi := float64(b)*width, float64(b+1)*width
		counts := map[string]float64{}
		total := 0
		for _, k := range kernels {
			// The last bin owns its upper edge so every interval lands
			// somewhere.
			if k.at >= lo && (k.at < hi || b == opt.Bins-1) {
				counts[k.model]++
				total++
			}
		}
		ph := Phase{
			Name:     fmt.Sprintf("replay-%d", b),
			Duration: width,
			Arrival:  Arrival{Pattern: PatternConstant},
		}
		if total > 0 {
			jobs := float64(total) / float64(opt.TasksPerJob)
			ph.Arrival.Rate = jobs / width
			if len(counts) > 1 {
				ph.Mix = counts
			} else {
				for m := range counts {
					ph.Jobs = &Template{Physics: m}
				}
			}
		}
		sc.Phases = append(sc.Phases, ph)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("workload: replay scenario invalid: %w", err)
	}
	return sc, nil
}
