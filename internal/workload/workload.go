// Package workload is the declarative scenario layer over the runner:
// seeded JSON specs describing how jobs arrive over virtual time —
// constant trickle, multi-period (diurnal) modulation, bursts, AMR
// "regrid storms" that re-tile the patch layout wave by wave — with a
// per-phase physics mix, expanded deterministically into a schedule of
// runner Specs. The same spec and seed always expand to the byte-
// identical schedule, on any machine, with any worker or shard count:
// every random choice draws from a per-phase splitmix64 substream
// (internal/rng) keyed by the scenario seed, never from global state.
//
// The inverse direction is trace replay (replay.go): a recorded run's
// event timeline folds back into a synthetic Scenario whose phases
// mirror the observed activity, so a production trace can be re-run as
// a workload through the same generator path.
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"sunuintah/internal/physics"
	"sunuintah/internal/rng"
	"sunuintah/internal/runner"
)

// rng stream indices under the scenario seed. Lanes are phase indices
// (arrival) or phase*maxBursts+burst (storm mixture reseeds).
const (
	streamArrival = 1
	streamMix     = 2
	// maxBursts bounds the bursts of one phase so (phase, burst) lanes
	// never collide across phases.
	maxBursts = 4096
)

// Arrival patterns.
const (
	PatternConstant = "constant"
	PatternPeriodic = "periodic"
	PatternBurst    = "burst"
	PatternStorm    = "storm"
)

// Template is the job template a phase stamps out: the subset of
// runner.Spec a scenario controls. Zero-valued fields of a phase
// template inherit from the scenario base.
type Template struct {
	Problem string `json:"problem,omitempty"`
	Cells   string `json:"cells,omitempty"`
	Layout  string `json:"layout,omitempty"`
	CGs     int    `json:"cgs,omitempty"`
	Variant string `json:"variant,omitempty"`
	Steps   int    `json:"steps,omitempty"`
	Physics string `json:"physics,omitempty"`
}

// merged overlays o's non-zero fields onto t.
func (t Template) merged(o *Template) Template {
	if o == nil {
		return t
	}
	if o.Problem != "" {
		t.Problem = o.Problem
	}
	if o.Cells != "" {
		t.Cells = o.Cells
	}
	if o.Layout != "" {
		t.Layout = o.Layout
	}
	if o.CGs != 0 {
		t.CGs = o.CGs
	}
	if o.Variant != "" {
		t.Variant = o.Variant
	}
	if o.Steps != 0 {
		t.Steps = o.Steps
	}
	if o.Physics != "" {
		t.Physics = o.Physics
	}
	return t
}

// spec converts the template into a runner Spec.
func (t Template) spec() runner.Spec {
	return runner.Spec{
		Problem: t.Problem,
		Cells:   t.Cells,
		Layout:  t.Layout,
		CGs:     t.CGs,
		Variant: t.Variant,
		Steps:   t.Steps,
		Physics: t.Physics,
	}
}

// Period is one sinusoidal component of a periodic arrival rate.
type Period struct {
	// Seconds is the period length in virtual seconds.
	Seconds float64 `json:"seconds"`
	// Amplitude modulates the base rate by this fraction (0.8 swings
	// the rate between 0.2x and 1.8x).
	Amplitude float64 `json:"amplitude"`
	// Phase offsets the component in radians.
	Phase float64 `json:"phase,omitempty"`
}

// Arrival describes how jobs arrive within one phase.
type Arrival struct {
	// Pattern is one of constant, periodic, burst, storm.
	Pattern string `json:"pattern"`
	// Rate is the mean arrival rate in jobs per virtual second
	// (constant and periodic patterns).
	Rate float64 `json:"rate,omitempty"`
	// Periods are the sinusoidal components of a periodic rate; the
	// effective rate is Rate*(1 + sum_i A_i sin(2 pi t/P_i + phi_i)),
	// clamped at zero.
	Periods []Period `json:"periods,omitempty"`
	// Burst is the number of jobs arriving together in each wave of a
	// burst or storm pattern (default 4); Every is the wave spacing in
	// virtual seconds.
	Burst int     `json:"burst,omitempty"`
	Every float64 `json:"every,omitempty"`
	// Layouts is the patch-layout cycle of a storm: wave k arrives with
	// layout k mod len(Layouts), modelling the task-graph recompilation
	// churn after each AMR regrid.
	Layouts []string `json:"layouts,omitempty"`
}

// Phase is one time-bounded segment of a scenario.
type Phase struct {
	Name     string  `json:"name"`
	Duration float64 `json:"duration"` // virtual seconds
	Arrival  Arrival `json:"arrival"`
	// Mix is a physics name->weight map applied to this phase's jobs;
	// the per-patch assignment seed derives from the scenario seed and
	// the phase index (and, in storms, the wave index), so each storm
	// wave re-partitions physics over the new layout. Empty keeps the
	// template's physics.
	Mix map[string]float64 `json:"mix,omitempty"`
	// Jobs overrides base template fields for this phase.
	Jobs *Template `json:"jobs,omitempty"`
}

// Scenario is a declarative workload spec.
type Scenario struct {
	Name string `json:"name"`
	// Seed selects every random choice of the expansion. Same scenario
	// + same seed = byte-identical schedule.
	Seed   uint64   `json:"seed"`
	Base   Template `json:"base"`
	Phases []Phase  `json:"phases"`
}

// Job is one expanded unit of work: a Spec submitted at a virtual time.
type Job struct {
	// At is the virtual arrival time from scenario start.
	At float64 `json:"at"`
	// Phase names the phase that emitted the job.
	Phase string      `json:"phase"`
	Spec  runner.Spec `json:"spec"`
}

// Parse decodes and validates a scenario from JSON. Unknown fields are
// rejected so typos surface instead of silently defaulting.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("workload: %v", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// validTriple checks an "AxBxC" size string without importing the
// experiments package (which imports workload).
func validTriple(s string) bool {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return false
	}
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return false
		}
	}
	return true
}

// Validate checks the scenario's structure, returning the first problem
// found with enough context to fix it. Spec-level names (variants,
// problem names) are validated later by the executing layer.
func (sc *Scenario) Validate() error {
	if len(sc.Phases) == 0 {
		return fmt.Errorf("workload: scenario %q has no phases", sc.Name)
	}
	for i, ph := range sc.Phases {
		where := fmt.Sprintf("workload: phase %d (%q)", i, ph.Name)
		if ph.Duration <= 0 {
			return fmt.Errorf("%s: duration must be positive, got %g", where, ph.Duration)
		}
		a := ph.Arrival
		switch a.Pattern {
		case PatternConstant:
			if a.Rate < 0 {
				return fmt.Errorf("%s: rate must be >= 0, got %g", where, a.Rate)
			}
		case PatternPeriodic:
			if a.Rate <= 0 {
				return fmt.Errorf("%s: periodic arrival needs a positive base rate, got %g", where, a.Rate)
			}
			if len(a.Periods) == 0 {
				return fmt.Errorf("%s: periodic arrival needs at least one period", where)
			}
			for j, p := range a.Periods {
				if p.Seconds <= 0 {
					return fmt.Errorf("%s: period %d needs positive seconds, got %g", where, j, p.Seconds)
				}
				if p.Amplitude < 0 {
					return fmt.Errorf("%s: period %d amplitude must be >= 0, got %g", where, j, p.Amplitude)
				}
			}
		case PatternBurst, PatternStorm:
			if a.Every <= 0 {
				return fmt.Errorf("%s: %s arrival needs a positive wave spacing (every), got %g", where, a.Pattern, a.Every)
			}
			if a.Burst < 0 {
				return fmt.Errorf("%s: burst size must be >= 0, got %d", where, a.Burst)
			}
			if int(ph.Duration/a.Every)+1 > maxBursts {
				return fmt.Errorf("%s: more than %d waves", where, maxBursts)
			}
			if a.Pattern == PatternStorm {
				if len(a.Layouts) == 0 {
					return fmt.Errorf("%s: storm arrival needs a layout cycle (layouts)", where)
				}
				for _, l := range a.Layouts {
					if !validTriple(l) {
						return fmt.Errorf("%s: bad storm layout %q (want AxBxC)", where, l)
					}
				}
			} else if len(a.Layouts) != 0 {
				return fmt.Errorf("%s: layouts only apply to the storm pattern", where)
			}
		default:
			return fmt.Errorf("%s: unknown arrival pattern %q (want %s|%s|%s|%s)",
				where, a.Pattern, PatternConstant, PatternPeriodic, PatternBurst, PatternStorm)
		}
		if len(ph.Mix) > 0 {
			if _, err := physics.FromWeights(ph.Mix, 0); err != nil {
				return fmt.Errorf("%s: %v", where, err)
			}
		}
		tp := sc.Base.merged(ph.Jobs)
		if tp.Problem == "" && tp.Cells == "" {
			return fmt.Errorf("%s: job template needs a problem name or custom cells", where)
		}
		if tp.Cells != "" && !validTriple(tp.Cells) {
			return fmt.Errorf("%s: bad cells %q (want AxBxC)", where, tp.Cells)
		}
		if tp.Layout != "" && !validTriple(tp.Layout) {
			return fmt.Errorf("%s: bad layout %q (want AxBxC)", where, tp.Layout)
		}
		if tp.CGs <= 0 {
			return fmt.Errorf("%s: job template needs a positive CG count", where)
		}
		if tp.Variant == "" {
			return fmt.Errorf("%s: job template needs a variant", where)
		}
		if tp.Steps <= 0 {
			return fmt.Errorf("%s: job template needs positive steps", where)
		}
		if tp.Physics != "" {
			if _, err := physics.Parse(tp.Physics); err != nil {
				return fmt.Errorf("%s: %v", where, err)
			}
		}
	}
	return nil
}

// Canonical renders the scenario as compact canonical JSON: fixed field
// order (struct order), sorted mix keys (encoding/json sorts map keys).
// Two scenarios with identical behaviour render identically — the form
// golden tests pin.
func (sc *Scenario) Canonical() string {
	b, err := json.Marshal(sc)
	if err != nil {
		// A Scenario is marshalable by construction; this is unreachable
		// short of memory corruption.
		panic(err)
	}
	return string(b)
}

// rate returns the instantaneous arrival rate of a at time t (seconds
// from phase start), clamped at zero.
func (a Arrival) rate(t float64) float64 {
	r := a.Rate
	for _, p := range a.Periods {
		r += a.Rate * p.Amplitude * math.Sin(2*math.Pi*t/p.Seconds+p.Phase)
	}
	if r < 0 {
		return 0
	}
	return r
}

// maxRate bounds the instantaneous rate of a from above.
func (a Arrival) maxRate() float64 {
	r := a.Rate
	for _, p := range a.Periods {
		r += a.Rate * p.Amplitude
	}
	return r
}

// burstSize returns the jobs per wave (default 4).
func (a Arrival) burstSize() int {
	if a.Burst > 0 {
		return a.Burst
	}
	return 4
}

// Expand turns the scenario into its deterministic job schedule, sorted
// by arrival time (ties keep emission order). The expansion is a pure
// function of the scenario (including its seed): thinning draws come
// from the per-phase arrival substream, physics-mix assignment seeds
// from the mix substream, so the schedule is byte-identical however and
// wherever it is expanded.
func (sc *Scenario) Expand() ([]Job, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	var jobs []Job
	phaseStart := 0.0
	for pi, ph := range sc.Phases {
		tp := sc.Base.merged(ph.Jobs)
		a := ph.Arrival

		// mixPhysics resolves the template physics for a wave: phase mix
		// (reseeded per storm wave) beats template physics.
		mixPhysics := func(wave int) (string, error) {
			if len(ph.Mix) == 0 {
				return tp.Physics, nil
			}
			seed := rng.SubSeed(sc.Seed, streamMix, pi*maxBursts+wave)
			sel, err := physics.FromWeights(ph.Mix, seed)
			if err != nil {
				return "", err
			}
			return sel.Canonical(), nil
		}

		emit := func(at float64, layout, phys string) {
			t := tp
			if layout != "" {
				t.Layout = layout
			}
			t.Physics = phys
			jobs = append(jobs, Job{At: at, Phase: ph.Name, Spec: t.spec()})
		}

		switch a.Pattern {
		case PatternConstant, PatternPeriodic:
			phys, err := mixPhysics(0)
			if err != nil {
				return nil, err
			}
			λmax := a.maxRate()
			if λmax > 0 {
				// Thinned slot sampling: slots narrow enough that the
				// per-slot expectation stays below one half, one emission
				// draw plus one jitter draw consumed per slot regardless
				// of outcome (stream position independent of results).
				w := 0.5 / λmax
				if w > ph.Duration {
					w = ph.Duration
				}
				stream := rng.NewSub(sc.Seed, streamArrival, pi)
				nSlots := int(math.Ceil(ph.Duration / w))
				for i := 0; i < nSlots; i++ {
					slotStart := float64(i) * w
					slotW := math.Min(w, ph.Duration-slotStart)
					if slotW <= 0 {
						break
					}
					e := a.rate(slotStart+slotW/2) * slotW
					u, jitter := stream.Uniform(), stream.Uniform()
					if u < e {
						emit(phaseStart+slotStart+jitter*slotW, "", phys)
					}
				}
			}
		case PatternBurst, PatternStorm:
			n := a.burstSize()
			wave := 0
			for tb := 0.0; tb < ph.Duration; tb += a.Every {
				layout := ""
				if a.Pattern == PatternStorm {
					layout = a.Layouts[wave%len(a.Layouts)]
				}
				phys, err := mixPhysics(wave)
				if err != nil {
					return nil, err
				}
				for j := 0; j < n; j++ {
					emit(phaseStart+tb, layout, phys)
				}
				wave++
			}
		}
		phaseStart += ph.Duration
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].At < jobs[j].At })
	return jobs, nil
}

// DefaultScenario is the reference mixed-physics workload: a steady
// warm-up, a two-period diurnal phase, and a regrid storm cycling three
// patch layouts with a reseeded three-way physics mix per wave. Small
// enough to run as a CI artifact, rich enough to exercise every arrival
// pattern the package supports except plain burst.
func DefaultScenario() *Scenario {
	return &Scenario{
		Name: "mixed-default",
		Seed: 1,
		Base: Template{
			Cells:   "16x16x32",
			Layout:  "2x2x4",
			CGs:     4,
			Variant: "acc.async",
			Steps:   3,
			Physics: "mix:burgers=2,advection=1,heat3d=1,seed=1",
		},
		Phases: []Phase{
			{
				Name:     "steady",
				Duration: 4,
				Arrival:  Arrival{Pattern: PatternConstant, Rate: 1.5},
			},
			{
				Name:     "diurnal",
				Duration: 8,
				Arrival: Arrival{
					Pattern: PatternPeriodic,
					Rate:    2,
					Periods: []Period{
						{Seconds: 4, Amplitude: 0.8},
						{Seconds: 1.5, Amplitude: 0.3, Phase: 1},
					},
				},
			},
			{
				Name:     "regrid-storm",
				Duration: 4,
				Arrival: Arrival{
					Pattern: PatternStorm,
					Burst:   3,
					Every:   1.5,
					Layouts: []string{"2x2x4", "4x4x2", "2x2x2"},
				},
				Mix: map[string]float64{"burgers": 1, "advection": 1, "heat3d": 1},
			},
		},
	}
}
