// Package perf holds the performance model of the simulated Sunway
// TaihuLight: the physical machine parameters from Table II of the paper,
// plus calibrated software-cost constants that turn work descriptors (cells
// computed, bytes moved, messages sent) into virtual time.
//
// The physical anchors are taken verbatim from the paper and Dongarra's
// TaihuLight report; the calibrated constants are tuned so the simulated
// runs reproduce the paper's measured throughput (~7.6 Gflop/s sustained
// per core group, 1.0–1.17% of peak) and the relative behaviour of the five
// experimental variants. They model a machine *like* the SW26010 running a
// preliminary port, not a cycle-accurate twin; see DESIGN.md §5.
package perf

// Params collects every tunable of the machine and software cost model.
// Use DefaultParams for the calibrated configuration.
type Params struct {
	// ---- Physical machine (Table II and Section IV) ----

	// MPEClockHz is the MPE core clock (1.45 GHz).
	MPEClockHz float64
	// CPEClockHz is the CPE core clock (1.45 GHz).
	CPEClockHz float64
	// MPEPeakFlops is the MPE peak (23.2 Gflop/s).
	MPEPeakFlops float64
	// CPEClusterPeakFlops is the 64-CPE cluster peak (742.4 Gflop/s).
	CPEClusterPeakFlops float64
	// NumCPEs is the number of CPEs per core group (64).
	NumCPEs int
	// LDMBytes is the per-CPE scratch-pad capacity (64 KiB).
	LDMBytes int64
	// MemBytesPerCG is main memory per core group (8 GiB).
	MemBytesPerCG int64
	// UsableFieldBytesPerCG is the effective memory available to field data
	// before the runtime fails with an allocation error. The paper's Table
	// III shows a 4 GB problem crashing on one CG (8 GB): the double
	// warehouses' ghost copies, foreign variables, MPI buffers and the
	// hybrid toolchain claim the rest. Any threshold in (2 GB, 4 GB)
	// reproduces the starred rows; 3.5 GiB is used.
	UsableFieldBytesPerCG int64
	// MemBandwidth is the per-CG DDR3-2133 128-bit memory-controller
	// bandwidth (~34 GB/s).
	MemBandwidth float64
	// LinkBandwidth is the bidirectional point-to-point interconnect
	// bandwidth (16 GB/s).
	LinkBandwidth float64
	// LinkLatency is the interconnect latency (~1 us).
	LinkLatency float64
	// CGsPerNode is the number of core groups sharing one SW26010
	// processor (4). Messages between CGs of the same processor cross the
	// on-chip network and main memory instead of the interconnect.
	CGsPerNode int
	// IntraNodeBandwidth and IntraNodeLatency describe same-processor
	// transfers.
	IntraNodeBandwidth float64
	IntraNodeLatency   float64

	// ---- CPE kernel costs (calibrated; Section VI) ----

	// CPECyclesPerCellScalar is the effective per-cell cost of the scalar
	// Burgers kernel on one CPE, dominated by six software exponentials and
	// the divides in phi (no hardware exp on SW26010). Calibrated to the
	// paper's sustained ~7.6 Gflop/s per CG.
	CPECyclesPerCellScalar float64
	// SIMDSpeedup divides the compute portion when the kernel is
	// vectorised with 4-wide intrinsics ("computing time is reduced by
	// half" — Section VII-B).
	SIMDSpeedup float64
	// DMALatency is the per-operation cost of a synchronous athread_get or
	// athread_put, including setup and the reply wait.
	DMALatency float64
	// DMAEfficiency derates MemBandwidth for strided tile DMA (gather of
	// rows with ghost margins rather than one contiguous block).
	DMAEfficiency float64
	// PackedDMAEfficiency is the improved efficiency when tiles are packed
	// into contiguous transfer buffers (Section IX future work: "it is
	// also possible to pack the tiles to improve data transfer
	// performance"); packing also amortises part of the per-operation
	// latency, modelled as PackedDMALatencyScale x DMALatency.
	PackedDMAEfficiency   float64
	PackedDMALatencyScale float64
	// FaawCost is the cost of the atomic fetch-and-add updating the
	// completion flag in main memory.
	FaawCost float64

	// ---- MPE software costs (calibrated; Section V-C) ----

	// MPECyclesPerCellScalar is the per-cell cost of running the kernel on
	// the MPE itself (host.sync mode). The MPE has caches and runs the
	// math-library exp; it is far faster per core than a CPE on this
	// kernel.
	MPECyclesPerCellScalar float64
	// MPEBCCyclesPerCell is the per-ghost-cell cost of evaluating the
	// boundary condition (a product of three phi evaluations, six
	// exponentials) on the MPE.
	MPEBCCyclesPerCell float64
	// MPECopyBandwidth is the MPE's effective memcpy rate for packing and
	// unpacking ghost regions through its cache hierarchy.
	MPECopyBandwidth float64
	// MPETouchBandwidth is the rate at which the MPE allocates and
	// first-touches a new data-warehouse variable (the "process the MPE
	// part of the selected task" step).
	MPETouchBandwidth float64
	// TaskFixedCost is the per-task-object scheduling overhead: selecting
	// a ready task, data-warehouse handle lookups, task-graph updates.
	TaskFixedCost float64
	// StepFixedCost is the per-timestep infrastructure overhead of the
	// runtime on each rank: preparing the scheduler, clearing completion
	// flags, and the end-of-step checks for task-graph recompilation, load
	// balancing and regridding (steps 1 and 4 of Section V-C). It is what
	// caps strong scaling for small problems at high CG counts.
	StepFixedCost float64
	// OffloadCost is the cost of launching an athread kernel on the CPE
	// cluster (lightweight, per Section IV-A).
	OffloadCost float64
	// PollCost is one check of the completion flag plus one trip around
	// the scheduler's progress loop.
	PollCost float64
	// PollInterval is how long the asynchronous scheduler works on other
	// business before rechecking the completion flag when it has nothing
	// queued (idle backoff).
	PollInterval float64

	// ---- MPI costs (calibrated; Sections V-C and related work [18]) ----

	// MPIPostCost is the software cost of posting one non-blocking send or
	// receive.
	MPIPostCost float64
	// MPITestCost is the software cost of testing one outstanding request.
	// Progress happens only under Test/Wait, as on most MPI
	// implementations (the paper cites Denis & Trahay for this).
	MPITestCost float64
	// ReduceBaseCost is the per-step software cost of a reduction on each
	// rank, in addition to the log2(P) latency terms.
	ReduceBaseCost float64

	// ---- Machine instability (Section VII-A) ----

	// NoiseFraction adds deterministic pseudo-random jitter of up to this
	// fraction to every kernel-compute charge, modelling the
	// "instabilities in the machine" that made the paper repeat each case
	// multiple times and select the best result. Zero (the default)
	// disables noise.
	NoiseFraction float64
	// NoiseSeed selects the jitter stream; repeating a case with
	// different seeds and keeping the minimum reproduces the paper's
	// measurement protocol.
	NoiseSeed uint64
}

// DefaultParams returns the calibrated model. The calibration tests in this
// package lock in the resulting behaviour.
func DefaultParams() Params {
	return Params{
		MPEClockHz:            1.45e9,
		CPEClockHz:            1.45e9,
		MPEPeakFlops:          23.2e9,
		CPEClusterPeakFlops:   742.4e9,
		NumCPEs:               64,
		LDMBytes:              64 * 1024,
		MemBytesPerCG:         8 << 30,
		UsableFieldBytesPerCG: 3584 << 20, // 3.5 GiB
		MemBandwidth:          34.1e9,
		LinkBandwidth:         16e9,
		LinkLatency:           1e-6,
		CGsPerNode:            4,
		IntraNodeBandwidth:    28e9,
		IntraNodeLatency:      0.4e-6,

		CPECyclesPerCellScalar: 5600,
		SIMDSpeedup:            2.0,
		DMALatency:             1.8e-6,
		DMAEfficiency:          0.80,
		PackedDMAEfficiency:    0.95,
		PackedDMALatencyScale:  0.5,
		FaawCost:               2e-7,

		MPECyclesPerCellScalar: 520,
		MPEBCCyclesPerCell:     120,
		MPECopyBandwidth:       3.0e9,
		MPETouchBandwidth:      1.4e9,
		TaskFixedCost:          40e-6,
		StepFixedCost:          9e-3,
		OffloadCost:            15e-6,
		PollCost:               1.2e-6,
		PollInterval:           20e-6,

		MPIPostCost:    2.0e-6,
		MPITestCost:    0.8e-6,
		ReduceBaseCost: 5e-6,
	}
}

// CGPeakFlops returns the combined MPE+CPE peak of one core group
// (765.6 Gflop/s), the denominator of the paper's Figure 10 efficiency.
func (p Params) CGPeakFlops() float64 { return p.MPEPeakFlops + p.CPEClusterPeakFlops }

// MessageTime returns the wire time for a point-to-point message of the
// given size over the interconnect: latency plus serialisation at link
// bandwidth.
func (p Params) MessageTime(bytes int64) float64 {
	return p.LinkLatency + float64(bytes)/p.LinkBandwidth
}

// MessageTimeBetween returns the wire time between two ranks, using the
// on-chip path when both core groups live on the same SW26010 processor.
func (p Params) MessageTimeBetween(src, dst int, bytes int64) float64 {
	if p.CGsPerNode > 1 && src/p.CGsPerNode == dst/p.CGsPerNode {
		return p.IntraNodeLatency + float64(bytes)/p.IntraNodeBandwidth
	}
	return p.MessageTime(bytes)
}

// LocalCopyTime returns the MPE time to copy the given bytes within one
// core group's memory (same-rank "message" or ghost pack/unpack).
func (p Params) LocalCopyTime(bytes int64) float64 {
	return float64(bytes) / p.MPECopyBandwidth
}

// TouchTime returns the MPE time to allocate and first-touch bytes of a
// new data-warehouse variable.
func (p Params) TouchTime(bytes int64) float64 {
	return float64(bytes) / p.MPETouchBandwidth
}

// MPEKernelTime returns the MPE-only execution time of a kernel over cells
// cells with the given relative cost weight (1.0 = the Burgers kernel).
func (p Params) MPEKernelTime(cells int64, weight float64) float64 {
	return float64(cells) * p.MPECyclesPerCellScalar * weight / p.MPEClockHz
}

// BCFillTime returns the MPE time to evaluate boundary conditions on the
// given number of ghost cells.
func (p Params) BCFillTime(cells int64) float64 {
	return float64(cells) * p.MPEBCCyclesPerCell / p.MPEClockHz
}

// CPEComputeTime returns the pure compute time for one CPE processing the
// given cells with the scalar or vectorised kernel, at relative weight.
func (p Params) CPEComputeTime(cells int64, simd bool, weight float64) float64 {
	cyc := p.CPECyclesPerCellScalar * weight
	if simd {
		cyc /= p.SIMDSpeedup
	}
	return float64(cells) * cyc / p.CPEClockHz
}

// DMATime returns the time for one synchronous DMA transfer of the given
// bytes when active CPEs share the memory controller.
func (p Params) DMATime(bytes int64, activeCPEs int) float64 {
	if activeCPEs < 1 {
		activeCPEs = 1
	}
	perCPE := p.MemBandwidth * p.DMAEfficiency / float64(activeCPEs)
	return p.DMALatency + float64(bytes)/perCPE
}

// PackedDMATime is DMATime for transfers whose tiles were packed into
// contiguous buffers (Section IX).
func (p Params) PackedDMATime(bytes int64, activeCPEs int) float64 {
	if activeCPEs < 1 {
		activeCPEs = 1
	}
	perCPE := p.MemBandwidth * p.PackedDMAEfficiency / float64(activeCPEs)
	return p.DMALatency*p.PackedDMALatencyScale + float64(bytes)/perCPE
}
