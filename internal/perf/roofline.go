package perf

// Roofline analysis of a kernel against the SW26010 core group, following
// the paper's Section III-A: "Given the 16 byte memory access required per
// cell ... the arithmetic intensity of the kernel is approximately 19.4
// Flop/Byte, and is still memory-bounded compared to that of the SW26010
// processor."

// KernelProfile describes a kernel's per-cell resource use.
type KernelProfile struct {
	FlopsPerCell float64
	// BytesPerCell is the main-memory traffic per cell (the Burgers
	// kernel streams u in and u_new out: 16 bytes).
	BytesPerCell float64
}

// ArithmeticIntensity returns flops per byte of memory traffic.
func (k KernelProfile) ArithmeticIntensity() float64 {
	return k.FlopsPerCell / k.BytesPerCell
}

// Roofline is the classic two-segment performance bound of one core group.
type Roofline struct {
	PeakFlops    float64 // compute roof (CG peak)
	MemBandwidth float64 // memory roof slope
}

// CGRoofline returns the core group's roofline.
func (p Params) CGRoofline() Roofline {
	return Roofline{PeakFlops: p.CGPeakFlops(), MemBandwidth: p.MemBandwidth}
}

// RidgeIntensity is the arithmetic intensity where the memory roof meets
// the compute roof; kernels below it are memory-bound at peak.
func (r Roofline) RidgeIntensity() float64 { return r.PeakFlops / r.MemBandwidth }

// Bound returns the attainable flop rate for a kernel of the given
// arithmetic intensity.
func (r Roofline) Bound(intensity float64) float64 {
	mem := intensity * r.MemBandwidth
	if mem < r.PeakFlops {
		return mem
	}
	return r.PeakFlops
}

// MemoryBound reports whether the kernel sits left of the ridge — the
// paper's observation for the Burgers kernel (AI 19.4 vs ridge 22.5).
func (r Roofline) MemoryBound(k KernelProfile) bool {
	return k.ArithmeticIntensity() < r.RidgeIntensity()
}
