package perf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsMatchTableII(t *testing.T) {
	p := DefaultParams()
	if p.NumCPEs != 64 {
		t.Errorf("NumCPEs = %d", p.NumCPEs)
	}
	if p.LDMBytes != 64*1024 {
		t.Errorf("LDMBytes = %d", p.LDMBytes)
	}
	if p.MemBytesPerCG != 8<<30 {
		t.Errorf("MemBytesPerCG = %d", p.MemBytesPerCG)
	}
	// Node performance 3.06 Tflop/s across four CGs.
	node := 4 * p.CGPeakFlops()
	if math.Abs(node-3.0624e12) > 1e9 {
		t.Errorf("node peak = %v", node)
	}
	if p.LinkBandwidth != 16e9 {
		t.Errorf("LinkBandwidth = %v", p.LinkBandwidth)
	}
	if p.LinkLatency != 1e-6 {
		t.Errorf("LinkLatency = %v", p.LinkLatency)
	}
}

func TestCGPeak(t *testing.T) {
	p := DefaultParams()
	if got := p.CGPeakFlops(); math.Abs(got-765.6e9) > 1e6 {
		t.Errorf("CG peak = %v, want 765.6e9", got)
	}
	// MPE contributes ~3% of the aggregate, as Section IV-A states.
	frac := p.MPEPeakFlops / p.CGPeakFlops()
	if frac < 0.025 || frac > 0.035 {
		t.Errorf("MPE fraction = %v, want ~3%%", frac)
	}
}

func TestMessageTimeComponents(t *testing.T) {
	p := DefaultParams()
	if got := p.MessageTime(0); got != p.LinkLatency {
		t.Errorf("zero-byte message = %v", got)
	}
	// 16 MB at 16 GB/s = 1 ms plus latency.
	got := p.MessageTime(16 << 20)
	want := p.LinkLatency + float64(16<<20)/16e9
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MessageTime = %v, want %v", got, want)
	}
}

func TestDMATimeSharesBandwidth(t *testing.T) {
	p := DefaultParams()
	one := p.DMATime(42304, 1)
	all := p.DMATime(42304, 64)
	if all <= one {
		t.Errorf("contended DMA (%v) should be slower than solo (%v)", all, one)
	}
	// With 64 active CPEs the transfer term scales by 64.
	soloXfer := one - p.DMALatency
	allXfer := all - p.DMALatency
	if math.Abs(allXfer/soloXfer-64) > 1e-9 {
		t.Errorf("transfer scaling = %v, want 64", allXfer/soloXfer)
	}
	if p.DMATime(100, 0) != p.DMATime(100, 1) {
		t.Error("activeCPEs < 1 should clamp to 1")
	}
}

func TestSIMDHalvesCompute(t *testing.T) {
	p := DefaultParams()
	scalar := p.CPEComputeTime(2048, false, 1)
	simd := p.CPEComputeTime(2048, true, 1)
	if math.Abs(scalar/simd-p.SIMDSpeedup) > 1e-9 {
		t.Errorf("simd speedup = %v, want %v", scalar/simd, p.SIMDSpeedup)
	}
}

func TestMPEMuchFasterPerCoreThanCPE(t *testing.T) {
	// The calibrated model encodes that the scalar exp-heavy kernel runs
	// far worse per core on a cacheless CPE than on the MPE, while the 64
	// CPEs together still beat one MPE by the paper's 2.7-6x after DMA.
	p := DefaultParams()
	mpe := p.MPEKernelTime(1000, 1)
	cpeCluster := p.CPEComputeTime(1000, false, 1) / float64(p.NumCPEs)
	ratio := mpe / cpeCluster
	if ratio < 2.7 {
		t.Errorf("ideal cluster speedup = %v, want > 2.7 (paper's minimum offload boost)", ratio)
	}
	if ratio > 20 {
		t.Errorf("ideal cluster speedup = %v, implausibly high", ratio)
	}
}

func TestSustainedThroughputNearPaper(t *testing.T) {
	// Back-of-envelope check that the calibrated kernel cost lands near
	// the paper's sustained throughput: 128x128x512 patch, 4096 tiles of
	// 16x16x8, vectorised, sync DMA per tile, 64 CPEs.
	p := DefaultParams()
	const cellsPerTile = 16 * 16 * 8
	const tilesPerCPE = 4096 / 64
	tileDMA := p.DMATime(18*18*10*8, 64) + p.DMATime(cellsPerTile*8, 64)
	tileCompute := p.CPEComputeTime(cellsPerTile, true, 1)
	perCPE := tilesPerCPE * (tileDMA + tileCompute)
	cells := int64(128 * 128 * 512)
	gflops := 311 * float64(cells) / perCPE / 1e9
	// Paper: ~7.6 Gflop/s per CG sustained (974.5 / 128). Allow a loose
	// band; the full scheduler adds overheads on top.
	if gflops < 5 || gflops > 13 {
		t.Errorf("modelled kernel throughput = %.2f Gflop/s per CG, want ~7-10", gflops)
	}
	eff := gflops * 1e9 / p.CGPeakFlops()
	if eff < 0.006 || eff > 0.02 {
		t.Errorf("efficiency = %.4f, want ~0.01 (paper: 1.0-1.17%%)", eff)
	}
}

func TestPropertyTimesNonNegativeAndMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint32) bool {
		x, y := int64(a%(1<<28)), int64(b%(1<<28))
		lo, hi := x, y
		if lo > hi {
			lo, hi = hi, lo
		}
		return p.MessageTime(lo) <= p.MessageTime(hi) &&
			p.LocalCopyTime(lo) <= p.LocalCopyTime(hi) &&
			p.TouchTime(lo) <= p.TouchTime(hi) &&
			p.MessageTime(lo) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRooflineReproducesSectionIIIA(t *testing.T) {
	p := DefaultParams()
	r := p.CGRoofline()
	// The paper's arithmetic: 311 flops over 16 bytes per cell is ~19.4
	// flop/B, below the CG's ridge point, hence memory-bound at peak.
	paperKernel := KernelProfile{FlopsPerCell: 311, BytesPerCell: 16}
	if ai := paperKernel.ArithmeticIntensity(); math.Abs(ai-19.4375) > 1e-9 {
		t.Fatalf("arithmetic intensity = %v, want 19.4375", ai)
	}
	if !r.MemoryBound(paperKernel) {
		t.Fatal("paper kernel should be memory-bound on the roofline")
	}
	// Ridge = 765.6e9 / 34.1e9 ~ 22.5 flop/B.
	if ridge := r.RidgeIntensity(); ridge < 20 || ridge > 25 {
		t.Fatalf("ridge intensity = %v", ridge)
	}
	// Bound is monotone and capped at peak.
	if r.Bound(1) >= r.Bound(10) {
		t.Fatal("memory-bound region not increasing")
	}
	if r.Bound(1000) != r.PeakFlops {
		t.Fatal("compute roof not flat")
	}
	// Our leaner counted kernel is also memory-bound.
	ours := KernelProfile{FlopsPerCell: 239, BytesPerCell: 16}
	if !r.MemoryBound(ours) {
		t.Fatal("counted kernel should be memory-bound too")
	}
}
