package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("mean/median = %v/%v", s.Mean, s.Median)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-15 {
		t.Fatalf("sd = %v, want %v", s.StdDev, want)
	}
	if !s.HasGeometricMean() {
		t.Fatal("positive samples should have a geometric mean")
	}
	gm := math.Pow(4*1*3*2, 0.25)
	if math.Abs(s.GeometricMean-gm) > 1e-12 {
		t.Fatalf("gm = %v, want %v", s.GeometricMean, gm)
	}
}

func TestSummarizeOddMedianAndEmpty(t *testing.T) {
	if m := Summarize([]float64{9, 1, 5}).Median; m != 5 {
		t.Fatalf("median = %v", m)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.String() != "n=0" {
		t.Fatalf("empty = %+v", empty)
	}
}

func TestSummarizeNonPositiveDisablesGeometric(t *testing.T) {
	if Summarize([]float64{1, -2, 3}).HasGeometricMean() {
		t.Fatal("negative sample should disable geometric mean")
	}
}

func TestPropertySummaryBounds(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, int(n))
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		s := Summarize(vals)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Fatal("speedup wrong")
	}
	if got := ParallelEfficiency(10, 1, 1.25, 8); got != 1 {
		t.Fatalf("efficiency = %v", got)
	}
	if got := ParallelEfficiency(10, 1, 2.5, 8); got != 0.5 {
		t.Fatalf("efficiency = %v", got)
	}
}

func TestTableAlignment(t *testing.T) {
	var tb Table
	tb.Align = "lr"
	tb.AddRow("name", "value")
	tb.AddRow("x", "10")
	tb.AddRow("longer", "3")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("out = %q", out)
	}
	if !strings.HasPrefix(lines[1], "x ") {
		t.Errorf("left align broken: %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], "     3") {
		t.Errorf("right align broken: %q", lines[2])
	}
}
