// Package stats provides the small numerical summaries the benchmark
// harness and examples report: series summaries, speed-up/efficiency
// helpers, and fixed-width table rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N              int
	Min, Max       float64
	Mean           float64
	Median         float64
	StdDev         float64
	GeometricMean  float64
	geometricValid bool
}

// Summarize computes a Summary of values. An empty input yields a zero
// Summary with N == 0.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if len(values) == 0 {
		return s
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	if n := len(sorted); n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	var sum float64
	logOK := true
	var logSum float64
	for _, v := range values {
		sum += v
		if v > 0 {
			logSum += math.Log(v)
		} else {
			logOK = false
		}
	}
	s.Mean = sum / float64(len(values))
	if logOK {
		s.GeometricMean = math.Exp(logSum / float64(len(values)))
		s.geometricValid = true
	}
	var sq float64
	for _, v := range values {
		d := v - s.Mean
		sq += d * d
	}
	if len(values) > 1 {
		s.StdDev = math.Sqrt(sq / float64(len(values)-1))
	}
	return s
}

// HasGeometricMean reports whether every sample was positive.
func (s Summary) HasGeometricMean() bool { return s.geometricValid }

// String renders the summary on one line.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%.4g median=%.4g mean=%.4g max=%.4g sd=%.3g",
		s.N, s.Min, s.Median, s.Mean, s.Max, s.StdDev)
}

// Speedup returns base/t — how many times faster t is than base.
func Speedup(base, t float64) float64 { return base / t }

// ParallelEfficiency returns the strong-scaling efficiency of scaling from
// (t1, p1) to (t2, p2) resources: t1*p1 / (t2*p2).
func ParallelEfficiency(t1 float64, p1 int, t2 float64, p2 int) float64 {
	return t1 * float64(p1) / (t2 * float64(p2))
}

// Table renders rows of cells in aligned columns. The first row is treated
// as a header; align is per-column ('l' or 'r', defaulting to 'r' when
// shorter than the row).
type Table struct {
	Align string
	rows  [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row formatting each value with its verb pair.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, args...))...)
}

// String renders the table.
func (t *Table) String() string {
	widths := []int{}
	for _, row := range t.rows {
		for i, c := range row {
			for len(widths) <= i {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			align := byte('r')
			if i < len(t.Align) {
				align = t.Align[i]
			}
			pad := widths[i] - len(c)
			if align == 'l' {
				b.WriteString(c)
				if i < len(row)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
