# Development targets. `make check` is the gate CI (and PRs) must pass.

GO ?= go

.PHONY: check vet build test examples race chaos workload loadcheck shardcheck optcheck bench benchgate cover clean

check: vet build test examples race chaos workload loadcheck shardcheck optcheck benchgate cover

vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$fmt_out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Build and run every example end to end: each one self-verifies (exact
# solutions, serial-reference bit-identity) and exits non-zero on drift,
# so dormant examples can no longer rot as APIs move underneath them.
examples:
	$(GO) vet ./examples/...
	@set -e; for d in examples/*/; do \
		echo "== $$d"; $(GO) run ./$$d > /dev/null; done
	@echo "examples: all ok"

# Race-check the concurrent subsystems: the sharded engine and the MPI
# model it drives (the packages with real cross-goroutine traffic), the
# runner package in full (including the determinism guard, which
# exercises real simulations on concurrent workers), the fault plane and
# the core recovery/sharding paths, and the experiments package's fast
# tests. The full-sweep experiments tests are minutes-long under the
# race detector, hence -short there.
race:
	$(GO) test -race -count=1 ./internal/sim/... ./internal/mpisim/...
	$(GO) test -race -count=1 ./internal/runner/...
	$(GO) test -race -count=1 ./internal/faults/...
	$(GO) test -race -count=1 ./internal/trace/... ./internal/obs/...
	$(GO) test -race -count=1 ./internal/rng/... ./internal/physics/... ./internal/heat3d/... ./internal/workload/...
	$(GO) test -race -count=1 -run 'Resilient|Reoffload|MPEFallback|MessageFaults|ZeroPlan|Sharded|Shards|Coalesced' ./internal/core/
	$(GO) test -race -short -count=1 ./internal/experiments/...
	$(GO) test -race -count=1 ./internal/jobstore/... ./internal/admission/... ./internal/loadgen/... ./cmd/sunserver/

# The shard gate: the parallel conservative engine must produce results
# byte-identical to the serial engine at every shard count (1/2/4/8 via
# TestShardedBitIdentical), with the window/mail machinery itself under
# the race detector, plus the latency-matrix and mail-storm edge cases.
shardcheck:
	$(GO) test -race -count=1 -run 'TestShardedBitIdentical' ./internal/core/
	$(GO) test -race -count=1 -run 'TestShardSet' ./internal/sim/

# The optimistic (Time-Warp) gate: speculative coordination must produce
# results byte-identical to the serial engine at every shard count and
# speculation depth (1/2/4/8 x depths 1/4 via TestOptimisticBitIdentical,
# with real rollbacks, anti-messages and cascades exercised), the
# committed event trace must match the serial order exactly, core's
# end-to-end cases must stay bit-identical with Optimistic set (including
# the crash-plan force-serial and process-degrade rules), and the rank
# rewind savers must round-trip — all under the race detector.
optcheck:
	$(GO) test -race -count=1 -run 'TestOptimistic' ./internal/sim/
	$(GO) test -race -count=1 -run 'TestCoreOptimistic|TestOptimisticDegradeReported|TestOptimisticCrashPlanForcesSerial|TestRankRewindRoundTrip' ./internal/core/

# The chaos gate: run the short fault-matrix determinism test (byte-equal
# artifact across worker counts, >= 95% of runs recovered at the default
# fault rate).
chaos:
	$(GO) test -run TestChaos -count=1 ./internal/experiments/

# The workload gate: the scenario sweep plus record-and-replay artifact
# must render byte-identically across worker and shard counts.
workload:
	$(GO) test -run TestWorkloadArtifact -count=1 ./internal/experiments/

# The load gate: the sunload harness (as a library) replays a compressed
# workload scenario against an in-process sunserver and fails if any
# submission errors, any accepted job never reaches a terminal state, or
# the latency quantiles come back implausible. Bounded runtime: tiny
# specs, instant executor, 60s hard deadline inside the test.
loadcheck:
	$(GO) test -run TestLoadCheck -count=1 ./cmd/sunserver/

# Run every micro-benchmark, then refresh the committed performance
# baseline. Commit the updated BENCH_baseline.json together with any
# intentional performance change.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem ./...
	$(GO) run ./cmd/benchgate -record -o BENCH_baseline.json

# The perf-regression gate: remeasure the hot paths and fail on a large
# calibration-adjusted slowdown, any steady-state allocation increase, or a
# shards-vs-serial speedup below the machine's parallelism floor. The rate
# tolerance is sized to the window-to-window noise of shared CI hosts
# (spin-probe-gated medians still jitter ~25% there); alloc and speedup
# checks are absolute and unaffected by it.
benchgate:
	$(GO) run ./cmd/benchgate -check BENCH_baseline.json -tol 0.35

# Coverage floor on the observability layer (the flight recorder and the
# trace recorder): pure logic with deterministic outputs, kept above 80%.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./internal/obs/ ./internal/trace/
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); \
		if ($$3+0 < 80) { printf "coverage %.1f%% is below the 80%% floor\n", $$3; exit 1 } \
		else { printf "observability coverage %.1f%% (floor 80%%)\n", $$3 } }'

clean:
	rm -rf .suncache .sunjobs cover.out
