# Development targets. `make check` is the gate CI (and PRs) must pass.

GO ?= go

.PHONY: check vet build test race bench clean

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent subsystems: the runner package in full
# (including the determinism guard, which exercises real simulations on
# concurrent workers) and the experiments package's fast tests. The
# full-sweep experiments tests are minutes-long under the race detector,
# hence -short there.
race:
	$(GO) test -race -count=1 ./internal/runner/...
	$(GO) test -race -short -count=1 ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

clean:
	rm -rf .suncache
